//! Adaptive-scheduling hard constraints.
//!
//! Cost priors may only change **when** cells run (LPT dispatch) and
//! **where** they run (cost-weighted shard partitioning) — never what
//! any cell computes. So the records of a priors run must be
//! byte-identical to a no-priors run at any worker count, a weighted
//! 3-shard merge must reassemble the exact unsharded bytes, and a
//! journal stamped with one priors hash must never replay into a run
//! scheduling under another (the merge re-evaluates instead).
//!
//! One `#[test]`: phases share a [`SharedRunner`] execution cache so
//! the byte comparisons are exact (the same discipline `shard_merge`
//! uses); interleaving phases would split the cache.

use pcg_core::plan::ShardSpec;
use pcg_core::CostPriors;
use pcg_harness::colstats::{cols_path, ColumnarStats};
use pcg_harness::eval::{self, evaluate_with, smoke_tasks};
use pcg_harness::journal::{self, Journal, Replay};
use pcg_harness::pipeline::{self, RunOptions};
use pcg_harness::record::{projection, EvalStats};
use pcg_harness::shard::{merge_shards, shard_stats_path};
use pcg_harness::{EvalConfig, SharedRunner};
use std::path::{Path, PathBuf};

fn tmp_cache() -> PathBuf {
    let dir = std::env::temp_dir().join("pcgbench-sched-balance-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("records-{}.json", std::process::id()))
}

/// Write real 3-shard journals + stats sidecars the way three
/// cooperating workers would: partitioned and dispatched under
/// `priors` (when given) and stamped with its hash.
fn write_shard_journals(
    cache: &Path,
    cfg: &EvalConfig,
    models: &[pcg_models::SyntheticModel],
    tasks: &[pcg_core::TaskId],
    runner: &SharedRunner,
    priors: Option<&CostPriors>,
) {
    let plan = eval::plan_for(cfg, models, Some(tasks));
    let hash = priors.map_or(0, |p| p.hash());
    for k in 0..3 {
        let spec = ShardSpec::new(k, 3);
        let jpath = journal::shard_journal_path(cache, spec);
        let wal = Journal::create_with_priors(&jpath, cfg, spec, hash).unwrap();
        let run = eval::evaluate_plan_priors(
            cfg,
            models,
            &plan,
            spec,
            2,
            priors,
            runner,
            &Replay::new(),
            |cell, model, rec| wal.append(cell, model, rec).unwrap(),
        );
        assert!(run.stats.cells > 0, "shard {spec} must own some cells");
        let bytes = serde_json::to_vec(&run.stats).unwrap();
        std::fs::write(shard_stats_path(cache, spec), bytes).unwrap();
    }
}

#[test]
fn priors_reorder_execution_without_touching_a_byte() {
    let cfg = EvalConfig::smoke();
    let tasks: Vec<_> = smoke_tasks().into_iter().take(7).collect();
    let models = pcg_models::zoo();
    let cache = tmp_cache();
    let priors = CostPriors::default_profile();

    // ------- Phase 1: no-priors reference at --jobs 1.
    let runner = SharedRunner::new(cfg.clone());
    let (ref1, _) = evaluate_with(&cfg, &models, Some(&tasks), 1, &runner);
    let ref_json = serde_json::to_string(&ref1).unwrap();

    // ------- Phase 2: LPT dispatch under the default profile, serial
    // and parallel. Bytes must not move.
    for jobs in [1usize, 8] {
        let (rec, stats) = eval::evaluate_resumable_priors(
            &cfg,
            &models,
            Some(&tasks),
            jobs,
            Some(&priors),
            &runner,
            &Replay::new(),
            |_, _, _| {},
        );
        assert_eq!(
            serde_json::to_string(&rec).unwrap(),
            ref_json,
            "priors at --jobs {jobs} must reproduce the no-priors record exactly"
        );
        assert_eq!(
            stats.cell_walls.len(),
            stats.cells,
            "every freshly evaluated cell must report a measured wall"
        );
    }

    // ------- Phase 3: three weighted shard workers, then a weighted
    // merge. Byte-identical reassembly, one wall entry per worker, and
    // the committed cols sidecar must carry walls usable as the next
    // run's priors.
    write_shard_journals(&cache, &cfg, &models, &tasks, &runner, Some(&priors));
    let merged = merge_shards(
        Some(&cache),
        &cfg,
        &RunOptions::new(2).with_priors("default"),
        3,
        Some(&tasks),
    );
    assert_eq!(
        serde_json::to_string(&merged).unwrap(),
        ref_json,
        "a weighted 3-shard merge must reproduce the unsharded record exactly"
    );
    assert_eq!(std::fs::read(&cache).unwrap(), ref_json.as_bytes());
    let stats: EvalStats =
        serde_json::from_slice(&std::fs::read(pipeline::stats_path(&cfg)).unwrap()).unwrap();
    assert_eq!(stats.shard_walls.len(), 3, "one wall entry per shard worker");
    assert!(!stats.cell_walls.is_empty(), "merged stats union the measured walls");
    let cols = ColumnarStats::read(&cols_path(&cache)).expect("merge commits the cols sidecar");
    assert_eq!(cols.projection(), projection(&ref1), "walls never leak into the projection");
    let next_priors = cols
        .cost_priors("merged")
        .expect("a merged sidecar with measured walls must yield a priors table");
    assert!(!next_priors.is_empty());

    // ------- Phase 4: workers journaled WITHOUT priors, merge runs
    // WITH them. Every journal must be rejected on its hash stamp and
    // the grid re-evaluated — same projection, no silent mixing.
    write_shard_journals(&cache, &cfg, &models, &tasks, &runner, None);
    let remerged = merge_shards(
        Some(&cache),
        &cfg,
        &RunOptions::new(2).with_priors("default"),
        3,
        Some(&tasks),
    );
    assert_eq!(
        projection(&remerged),
        projection(&ref1),
        "a merge that rejects every journal still produces the full grid"
    );
    let stats: EvalStats =
        serde_json::from_slice(&std::fs::read(pipeline::stats_path(&cfg)).unwrap()).unwrap();
    assert!(
        stats.journal_frames_rejected >= 3,
        "all three mismatched journals must be rejected, got {}",
        stats.journal_frames_rejected
    );

    let _ = std::fs::remove_file(&cache);
    let _ = std::fs::remove_file(cols_path(&cache));
}
