//! Warm-path hard constraints.
//!
//! The warm execution engine (substrate leasing, input memoization,
//! supervisor reuse) is a pure performance layer: evaluation records
//! must be **byte-identical** to the cold path's, at any worker count.
//! Ratios and stage timings are measured quantities, so the comparison
//! uses the single determinism projection `pcg_harness::record::projection` —
//! task identity, per-sample build/correct flags, and sweep keys.
//!
//! One `#[test]` only: the warm flag, the lease cache, and the input
//! cache are process-global, so the phases must not interleave.

use pcg_core::warm;
use pcg_harness::eval::{evaluate_with, smoke_tasks};
use pcg_harness::record::projection;
use pcg_harness::{EvalConfig, EvalStats, SharedRunner};
use pcg_models::SyntheticModel;
use pcg_problems::{input_cache, lease};

fn run(cfg: &EvalConfig, tasks: &[pcg_core::TaskId], warm_on: bool, jobs: usize) -> (String, EvalStats) {
    warm::set_enabled(warm_on);
    let models = vec![SyntheticModel::by_name("CodeLlama-13B").expect("zoo model")];
    let runner = SharedRunner::new(cfg.clone());
    let (rec, stats) = evaluate_with(cfg, &models, Some(tasks), jobs, &runner);
    (projection(&rec), stats)
}

#[test]
fn warm_records_are_byte_identical_to_cold_at_any_jobs() {
    let mut cfg = EvalConfig::smoke();
    // Flaky candidates fault once per coordinate per *process*; with
    // retries on, the first (cold) run and the later warm runs both
    // record the post-retry outcome, keeping projections comparable.
    cfg.retry_flaky = true;
    // One problem across all seven execution models: every substrate
    // (and thus every lease key shape) participates.
    let tasks: Vec<_> = smoke_tasks().into_iter().take(7).collect();

    // Cold reference.
    let (cold, cold_stats) = run(&cfg, &tasks, false, 1);
    assert_eq!(
        cold_stats.lease_hits + cold_stats.lease_misses,
        0,
        "cold path must never touch the lease cache"
    );

    // Warm runs — serial and oversubscribed — each from a cold cache.
    lease::flush();
    input_cache::flush();
    let (warm1, warm1_stats) = run(&cfg, &tasks, true, 1);
    lease::flush();
    input_cache::flush();
    let (warm8, warm8_stats) = run(&cfg, &tasks, true, 8);

    assert_eq!(cold, warm1, "warm --jobs 1 record must project byte-identical to cold");
    assert_eq!(cold, warm8, "warm --jobs 8 record must project byte-identical to cold");

    // And the warm path must actually have engaged.
    assert!(warm1_stats.lease_hits > 0, "repeat executions must reuse substrates: {warm1_stats:?}");
    assert!(warm1_stats.input_cache_hits > 0, "repeat coordinates must reuse inputs");
    assert!(warm8_stats.lease_hits > 0);
    assert!(warm1_stats.pool_setup_s >= 0.0);
}
