//! Multiplexed-MPI hard constraints at the harness level.
//!
//! Rank multiplexing (and the zero-copy transport underneath it) is a
//! pure performance layer: full-pipeline evaluation records over MPI
//! and hybrid tasks must be **byte-identical** to thread-per-rank
//! execution, at any worker count. The comparison uses the single
//! determinism projection in `pcg_harness::record::projection` — task identity,
//! per-sample build/correct flags, and sweep keys — because ratios and
//! stage timings are measured quantities.
//!
//! One `#[test]` only: the execution mode, the lease cache, and the
//! input cache are process-global, so the phases must not interleave.

use pcg_core::warm;
use pcg_core::ExecutionModel;
use pcg_harness::eval::{evaluate_with, smoke_tasks};
use pcg_harness::record::projection;
use pcg_harness::{EvalConfig, EvalStats, SharedRunner};
use pcg_models::SyntheticModel;
use pcg_mpisim::sched::{self, ExecMode};
use pcg_problems::{input_cache, lease};

fn run(cfg: &EvalConfig, tasks: &[pcg_core::TaskId], mode: ExecMode, jobs: usize) -> (String, EvalStats) {
    sched::set_exec_mode(mode);
    lease::flush();
    input_cache::flush();
    let models = vec![SyntheticModel::by_name("CodeLlama-13B").expect("zoo model")];
    let runner = SharedRunner::new(cfg.clone());
    let (rec, stats) = evaluate_with(cfg, &models, Some(tasks), jobs, &runner);
    (projection(&rec), stats)
}

#[test]
fn multiplexed_records_match_thread_per_rank_at_any_jobs() {
    let mut cfg = EvalConfig::smoke();
    // Flaky candidates fault once per coordinate per *process*; with
    // retries on, every phase records the post-retry outcome, keeping
    // projections comparable.
    cfg.retry_flaky = true;
    // The message-passing tasks only: those are the ones whose
    // execution substrate the multiplexer replaces.
    let tasks: Vec<_> = smoke_tasks()
        .into_iter()
        .filter(|t| matches!(t.model, ExecutionModel::Mpi | ExecutionModel::MpiOpenMp))
        .take(4)
        .collect();
    assert!(!tasks.is_empty(), "smoke grid must contain MPI tasks");
    warm::set_enabled(true);

    // Thread-per-rank reference.
    let (thr, thr_stats) = run(&cfg, &tasks, ExecMode::ForceThreads, 1);
    assert_eq!(
        thr_stats.ranks_multiplexed, 0,
        "forced thread-per-rank evaluation must not multiplex"
    );

    // Multiplexed — serial and oversubscribed — each from a cold cache.
    let (mux1, mux1_stats) = run(&cfg, &tasks, ExecMode::ForceMux, 1);
    let (mux8, mux8_stats) = run(&cfg, &tasks, ExecMode::ForceMux, 8);
    sched::set_exec_mode(ExecMode::Auto);

    assert_eq!(thr, mux1, "mux --jobs 1 record must project byte-identical to thread-per-rank");
    assert_eq!(thr, mux8, "mux --jobs 8 record must project byte-identical to thread-per-rank");

    // And the multiplexer must actually have engaged.
    assert!(
        mux1_stats.ranks_multiplexed > 0,
        "forced mux evaluation must run ranks as fibers: {mux1_stats:?}"
    );
    assert!(mux8_stats.ranks_multiplexed > 0);
    assert!(
        mux1_stats.bytes_zero_copied > 0,
        "MPI workloads must move some payload bytes by reference"
    );
}
