//! Journal v3 corruption battery + v2→v3 migration guarantees.
//!
//! Two layers of defence for the binary journal:
//!
//! - **Property suite**: any `TaskRecord` the evaluator can produce
//!   round-trips through the entry codec with byte-identical JSON, and
//!   any single-bit mutation of a journal file never replays a record
//!   whose bytes differ from what was written — corruption is either
//!   tolerated (clean prefix) or loudly rejected, never silently
//!   misread.
//! - **Deterministic battery**: named corruption shapes (torn tail,
//!   truncated length prefix, duplicated cells, forged cell tags,
//!   wrong shard geometry, wrong config) with exact assertions on
//!   replay contents, stale accounting, and reject diagnostics.
//!
//! Plus the migration contract: a v2 JSONL journal loads, compacts to
//! v3, and reproduces a cache **byte-identical** to the pure-JSONL
//! reference run at `--jobs 1` and `--jobs 8`.

use pcg_core::frame::JOURNAL_MAGIC;
use pcg_core::plan::{CellId, ShardSpec};
use pcg_core::{warm, ExecutionModel, ProblemId, ProblemType, TaskId};
use pcg_harness::codec;
use pcg_harness::eval::{self, evaluate_with, smoke_tasks};
use pcg_harness::journal::{self, Journal, JournalFormat};
use pcg_harness::record::TaskRecord;
use pcg_harness::{EvalConfig, SharedRunner};
use pcg_metrics::TaskSamples;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tmp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("pcgbench-journal-v3-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{tag}-{}-{}.journal",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A deterministic record with every feature the codec must carry:
/// mixed flags, float ratios, a high-temperature set on odd variants,
/// and a multi-key sweep.
fn fixture_record(variant: usize) -> TaskRecord {
    TaskRecord {
        task: ProblemId::new(ProblemType::Scan, variant % 5).task(ExecutionModel::OpenMp),
        low: TaskSamples {
            built: vec![true, variant.is_multiple_of(2), false],
            correct: vec![true, false, false],
            ratio: vec![1.5 + variant as f64, 0.0, 0.25],
        },
        high: (variant % 2 == 1).then(|| TaskSamples {
            built: vec![true, true],
            correct: vec![true, false],
            ratio: vec![2.0, 0.5],
        }),
        sweep: BTreeMap::from([(2u32, vec![1.0, 2.0]), (8u32, vec![0.5 * variant as f64])]),
    }
}

/// Write a 3-entry v3 journal and return `(path, entries)` where the
/// entries are keyed exactly as the journal keys them.
fn fixture_journal(cfg: &EvalConfig, tag: &str) -> (PathBuf, Vec<(CellId, String, TaskRecord)>) {
    let chash = journal::config_hash(cfg);
    let entries: Vec<(CellId, String, TaskRecord)> = (0..3)
        .map(|v| {
            let model = format!("model-{v}");
            let rec = fixture_record(v);
            (CellId::new(chash, &model, rec.task), model, rec)
        })
        .collect();
    let path = tmp_path(tag);
    let wal = Journal::create(&path, cfg, ShardSpec::WHOLE).unwrap();
    for (cell, model, rec) in &entries {
        wal.append(*cell, model, rec).unwrap();
    }
    (path, entries)
}

/// Assert the invariant at the heart of the battery: every cell the
/// mutated journal replays is byte-identical (as JSON) to the record
/// originally written under that cell id — a corrupted file may lose
/// entries, never alter them.
fn assert_no_silent_corruption(
    loaded: &journal::Loaded,
    entries: &[(CellId, String, TaskRecord)],
    what: &str,
) {
    for (id, cell) in &loaded.replay {
        let (_, model, original) = entries
            .iter()
            .find(|(eid, _, _)| eid == id)
            .unwrap_or_else(|| panic!("{what}: replayed unknown cell {id:?}"));
        assert_eq!(&cell.model, model, "{what}: model altered for cell {id:?}");
        assert_eq!(
            serde_json::to_vec(&cell.record).unwrap(),
            serde_json::to_vec(original).unwrap(),
            "{what}: record bytes altered for cell {id:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any record shape → encode → decode is the identity, measured as
    /// JSON byte equality (the export format the cache commits).
    #[test]
    fn entry_codec_roundtrips_arbitrary_records(
        task_idx in 0usize..pcg_core::NUM_TASKS,
        model in "[-a-zA-Z0-9 ._:]{1,24}",
        flags in vec(0u8..2, 2..26),
        ratio in vec(-1e6f64..1e6, 0..24),
        high_present in 0u8..2,
        sweep_keys in vec(1u32..64, 0..4),
    ) {
        let bools: Vec<bool> = flags.iter().map(|&b| b == 1).collect();
        let sweep: BTreeMap<u32, Vec<f64>> =
            sweep_keys.iter().map(|&k| (k, ratio.clone())).collect();
        let record = TaskRecord {
            task: TaskId::from_index(task_idx).unwrap(),
            low: TaskSamples {
                built: bools.clone(),
                correct: bools.iter().map(|b| !b).collect(),
                ratio: ratio.clone(),
            },
            high: (high_present == 1).then(|| TaskSamples {
                built: bools.clone(),
                correct: bools.clone(),
                ratio: ratio.iter().map(|r| r / 2.0).collect(),
            }),
            sweep,
        };
        let payload = codec::encode_entry(&model, &record);
        let (model2, record2) = codec::decode_entry(&payload).unwrap();
        prop_assert_eq!(model2, model);
        prop_assert_eq!(
            serde_json::to_vec(&record2).unwrap(),
            serde_json::to_vec(&record).unwrap()
        );
    }

    /// Flip one arbitrary bit anywhere in a journal file: replay must
    /// come back a byte-identical subset of what was written. This is
    /// the "zero silently-corrupted records" law.
    #[test]
    fn mutated_journals_never_replay_altered_records(flip in 0usize..1_000_000) {
        let cfg = EvalConfig::smoke();
        let (path, entries) = fixture_journal(&cfg, "prop-mutate");
        let mut bytes = std::fs::read(&path).unwrap();
        let bit = flip % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &bytes).unwrap();
        let loaded = journal::load_counting(&path, &cfg, ShardSpec::WHOLE);
        assert_no_silent_corruption(&loaded, &entries, &format!("bit {bit}"));
        prop_assert!(
            loaded.replay.len() == entries.len()
                || !loaded.rejects.is_empty()
                || loaded.replay.is_empty(),
            "bit {}: lost cells without a reject diagnostic",
            bit
        );
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn corruption_battery() {
    let cfg = EvalConfig::smoke();

    // ------- Baseline: the fixture journal replays fully and cleanly.
    let (path, entries) = fixture_journal(&cfg, "battery");
    let pristine = std::fs::read(&path).unwrap();
    assert!(pristine.starts_with(&JOURNAL_MAGIC));
    let loaded = journal::load_counting(&path, &cfg, ShardSpec::WHOLE);
    assert_eq!(loaded.replay.len(), 3);
    assert_eq!(loaded.stale_frames, 0);
    assert!(loaded.rejects.is_empty());
    assert_eq!(loaded.format, Some(JournalFormat::V3));
    assert!(!loaded.needs_compaction());
    let offsets = journal::entry_offsets(&path);
    assert_eq!(offsets.len(), 4, "3 entry frames + end sentinel");

    // ------- Exhaustive single-bit flips across the whole file. Every
    // flip must leave replay a byte-identical subset of the original
    // entries — whether it lands in the magic, the header frame, a
    // length prefix, a cell tag, a CRC, or a payload.
    for bit in 0..pristine.len() * 8 {
        let mut corrupt = pristine.clone();
        corrupt[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &corrupt).unwrap();
        let loaded = journal::load_counting(&path, &cfg, ShardSpec::WHOLE);
        let what = format!("flip at bit {bit}");
        assert_no_silent_corruption(&loaded, &entries, &what);
        assert!(
            loaded.replay.len() == entries.len()
                || !loaded.rejects.is_empty()
                || loaded.replay.is_empty(),
            "{what}: cells vanished without a reject diagnostic"
        );
    }

    // ------- Truncated length prefix: cut 2 bytes into an entry
    // frame's header. Replay keeps the frames before the cut and
    // reports a torn tail at the right offset.
    std::fs::write(&path, &pristine[..offsets[1] as usize + 2]).unwrap();
    let torn = journal::load_counting(&path, &cfg, ShardSpec::WHOLE);
    assert_eq!(torn.replay.len(), 1);
    assert_no_silent_corruption(&torn, &entries, "truncated length prefix");
    assert_eq!(torn.rejects.len(), 1);
    assert_eq!(torn.rejects[0].offset, offsets[1]);
    assert!(torn.rejects[0].reason.contains("torn tail"), "got: {}", torn.rejects[0].reason);
    assert!(torn.needs_compaction());

    // ------- Torn tail mid-payload: the crash shape `simulate_crash`
    // uses, but cutting inside the payload (past the 16-byte frame
    // header) so the length field itself is intact.
    std::fs::write(&path, &pristine[..offsets[2] as usize + 20]).unwrap();
    let torn = journal::load_counting(&path, &cfg, ShardSpec::WHOLE);
    assert_eq!(torn.replay.len(), 2);
    assert_no_silent_corruption(&torn, &entries, "torn payload");
    assert_eq!(torn.rejects.len(), 1);
    assert_eq!(torn.rejects[0].offset, offsets[2]);
    assert!(torn.rejects[0].reason.contains("torn tail"));

    // ------- Duplicated cell: a re-append after an earlier truncated
    // replay. Last write wins, counted stale, but *not* a reject —
    // duplicates are an expected crash artifact, not corruption.
    std::fs::write(&path, &pristine).unwrap();
    let wal = Journal::open_append(&path).unwrap();
    let (cell0, model0, _) = &entries[0];
    // Same cell, same task — only the measured payload differs, as a
    // re-evaluation after an earlier truncated replay would produce.
    let mut shadow = fixture_record(0);
    shadow.low.ratio[0] = 9.75;
    wal.append(*cell0, model0, &shadow).unwrap();
    drop(wal);
    let dup = journal::load_counting(&path, &cfg, ShardSpec::WHOLE);
    assert_eq!(dup.replay.len(), 3);
    assert_eq!(dup.stale_frames, 1);
    assert!(dup.rejects.is_empty());
    assert!(dup.needs_compaction());
    assert_eq!(
        serde_json::to_vec(&dup.replay[cell0].record).unwrap(),
        serde_json::to_vec(&shadow).unwrap(),
        "last write must win for a duplicated cell"
    );

    // ------- Compaction folds the duplicate away and the compacted
    // journal replays identically (with the shadow record, which is
    // the replayable generation).
    let folded = dup.replay.clone();
    journal::compact(&path, &cfg, ShardSpec::WHOLE, &folded).unwrap();
    assert!(std::fs::read(&path).unwrap().starts_with(&JOURNAL_MAGIC));
    let compacted = journal::load_counting(&path, &cfg, ShardSpec::WHOLE);
    assert_eq!(compacted.replay.len(), 3);
    assert_eq!(compacted.stale_frames, 0);
    assert!(!compacted.needs_compaction());
    assert_eq!(
        serde_json::to_vec(&compacted.replay[cell0].record).unwrap(),
        serde_json::to_vec(&shadow).unwrap()
    );

    // ------- Forged cell tag: splice in a frame whose CRC is valid
    // but whose cell tag doesn't match the entry's own fields. The
    // cell self-check must catch what the CRC cannot.
    let (cell2, model2, rec2) = &entries[2];
    let mut forged = pristine[..offsets[2] as usize].to_vec();
    forged.extend(pcg_core::frame::encode_frame(
        cell2.0 ^ 0xdead_beef,
        &codec::encode_entry(model2, rec2),
    ));
    std::fs::write(&path, &forged).unwrap();
    let loaded = journal::load_counting(&path, &cfg, ShardSpec::WHOLE);
    assert_eq!(loaded.replay.len(), 2);
    assert_no_silent_corruption(&loaded, &entries, "forged cell tag");
    assert_eq!(loaded.rejects.len(), 1);
    assert!(loaded.rejects[0].reason.contains("self-check"), "got: {}", loaded.rejects[0].reason);

    // ------- Wrong shard geometry / wrong config: a journal is only
    // replayable into the exact grid that wrote it.
    std::fs::write(&path, &pristine).unwrap();
    assert!(journal::load(&path, &cfg, ShardSpec::new(1, 3)).is_empty());
    let mut other_cfg = cfg.clone();
    other_cfg.seed ^= 1;
    assert!(journal::load(&path, &other_cfg, ShardSpec::WHOLE).is_empty());

    std::fs::remove_file(&path).unwrap();
}

/// The migration contract, end to end: a v2 JSONL journal holding a
/// full run's cells loads through the fallback reader, demands
/// compaction, compacts to v3, and the migrated journal reproduces a
/// cache byte-identical to the pure-JSONL reference at `--jobs 1` and
/// `--jobs 8`. One `#[test]`: the phases share a [`SharedRunner`] so
/// records are byte-comparable, and the warm flag is process-global.
#[test]
fn v2_migration_is_byte_identical_at_any_job_count() {
    let cfg = EvalConfig::smoke();
    let tasks: Vec<TaskId> = smoke_tasks().into_iter().take(4).collect();
    let models = pcg_models::zoo();
    warm::set_enabled(true);

    // Pure-JSONL-era reference: what a v2 run recorded, jobs-agnostic.
    let runner = SharedRunner::new(cfg.clone());
    let (ref1, _) = evaluate_with(&cfg, &models, Some(&tasks), 1, &runner);
    let (ref8, _) = evaluate_with(&cfg, &models, Some(&tasks), 8, &runner);
    let ref_json = serde_json::to_vec(&ref1).unwrap();
    assert_eq!(ref_json, serde_json::to_vec(&ref8).unwrap(), "reference must be jobs-agnostic");

    let chash = journal::config_hash(&cfg);
    let entries: Vec<(CellId, String, TaskRecord)> = ref1
        .models
        .iter()
        .flat_map(|m| {
            m.tasks
                .iter()
                .map(move |t| (CellId::new(chash, &m.model, t.task), m.model.clone(), t.clone()))
        })
        .collect();

    // A v2 journal as a crashed v2-era run would have left it.
    let jpath = tmp_path("migrate");
    journal::write_v2_journal(&jpath, &cfg, ShardSpec::WHOLE, &entries).unwrap();
    assert!(!std::fs::read(&jpath).unwrap().starts_with(&JOURNAL_MAGIC));
    let loaded = journal::load_counting(&jpath, &cfg, ShardSpec::WHOLE);
    assert_eq!(loaded.format, Some(JournalFormat::V2Jsonl));
    assert_eq!(loaded.replay.len(), entries.len());
    assert!(loaded.stale_frames == 0 && loaded.rejects.is_empty());
    assert!(loaded.needs_compaction(), "a clean v2 journal must still demand migration");

    // Migrate (replay v2 → commit v3) and reload through the binary path.
    journal::compact(&jpath, &cfg, ShardSpec::WHOLE, &loaded.replay).unwrap();
    assert!(std::fs::read(&jpath).unwrap().starts_with(&JOURNAL_MAGIC));
    let migrated = journal::load_counting(&jpath, &cfg, ShardSpec::WHOLE);
    assert_eq!(migrated.format, Some(JournalFormat::V3));
    assert!(!migrated.needs_compaction());
    assert_eq!(migrated.replay.len(), entries.len());

    // Assembling straight from the migrated replay reproduces the
    // committed cache bytes with no evaluation at all...
    let plan = eval::plan_for(&cfg, &models, Some(&tasks));
    let assembled = eval::assemble(&cfg, &plan, |c| migrated.replay[&c.id].record.clone());
    assert_eq!(serde_json::to_vec(&assembled).unwrap(), ref_json);

    // ...and driving the real evaluator over the migrated replay — at
    // --jobs 1 and --jobs 8 — replays every cell and commits the
    // identical bytes the pure-JSONL run did.
    for jobs in [1usize, 8] {
        let (rec, stats) =
            eval::evaluate_resumable(&cfg, &models, Some(&tasks), jobs, &runner, &migrated.replay, |_, _, _| {});
        assert_eq!(stats.resumed_cells, entries.len(), "jobs={jobs}: every cell must replay");
        assert_eq!(
            serde_json::to_vec(&rec).unwrap(),
            ref_json,
            "jobs={jobs}: migrated replay must commit identical bytes"
        );
    }

    std::fs::remove_file(&jpath).unwrap();
}
