//! Multi-variant grid hard constraints: a `--prompt-variants
//! naive,expert,rag` run triples the model axis (one row per
//! (model, variant)), survives a 3-shard run with stealing enabled plus
//! a merge, and the per-variant pass@1 profiles come out both distinct
//! and ordered the way the calibration deltas dictate
//! (naive < expert < rag).
//!
//! Workers run sequentially in-process here, so the first worker
//! drains its own partition and then steals its idle siblings'
//! cells — the merge must still reassemble the exact reference grid.
//! Each phase measures with its own runner, so the comparison is the
//! deterministic projection, as across real processes.

use pcg_core::plan::ShardSpec;
use pcg_core::prompt::split_label;
use pcg_core::PromptVariant;
use pcg_harness::eval::{evaluate_with, smoke_tasks};
use pcg_harness::pipeline::RunOptions;
use pcg_harness::record::projection;
use pcg_harness::report;
use pcg_harness::shard::{merge_shards, run_shard};
use pcg_harness::{EvalConfig, EvalRecord, SharedRunner};
use pcg_models::SyntheticSource;
use std::path::PathBuf;

fn tmp_cache() -> PathBuf {
    let dir = std::env::temp_dir().join("pcgbench-variant-grid-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("records-{}.json", std::process::id()))
}

/// Mean pass@1 over every model row of one variant.
fn variant_pass1(rec: &EvalRecord, variant: PromptVariant) -> f64 {
    let rows: Vec<f64> = rec
        .models
        .iter()
        .filter(|m| split_label(&m.model).1 == variant)
        .map(|m| report::mean_pass_at_k(m, |_| true, 1, false))
        .collect();
    assert!(!rows.is_empty(), "no rows for {variant:?}");
    rows.iter().sum::<f64>() / rows.len() as f64
}

#[test]
fn variant_grid_survives_shard_steal_merge_with_distinct_profiles() {
    let variants =
        vec![PromptVariant::Naive, PromptVariant::Expert, PromptVariant::RagAugmented];
    let cfg = EvalConfig { prompt_variants: variants.clone(), ..EvalConfig::smoke() };
    let tasks: Vec<_> = smoke_tasks().into_iter().take(7).collect();
    let cache = tmp_cache();

    // Reference: single-process run over the variant source.
    let source = SyntheticSource::zoo(&cfg.prompt_variants);
    let runner = SharedRunner::new(cfg.clone());
    let (reference, _) = evaluate_with(&cfg, &source, Some(&tasks), 4, &runner);
    assert_eq!(reference.models.len(), 21, "7 zoo models × 3 variants");
    assert!(reference.models.iter().any(|m| m.model == "GPT-4@naive"));
    assert!(
        reference.models.iter().any(|m| m.model == "GPT-4"),
        "the expert tier keeps the bare (default-variant) label"
    );

    // Three shard workers, stealing on. Run sequentially: worker 0
    // drains its partition, then steals everything its never-started
    // siblings own; workers 1 and 2 wake up to find their cells taken.
    let mut stolen_total = 0u64;
    for k in 0..3 {
        let spec = ShardSpec::new(k, 3);
        let opts = RunOptions { steal: true, shard: Some(spec), ..RunOptions::new(4) };
        let stats = run_shard(Some(&cache), &cfg, &opts, spec, Some(&tasks));
        stolen_total += stats.cells_stolen;
    }
    assert!(stolen_total > 0, "the lead worker must have stolen idle siblings' cells");

    let merged = merge_shards(Some(&cache), &cfg, &RunOptions::new(4), 3, Some(&tasks));
    assert_eq!(
        projection(&merged),
        projection(&reference),
        "shard + steal + merge must reproduce the single-process variant grid"
    );

    // The axis must actually measure something: tiers are ordered by
    // their calibration deltas, naive strictly worst, RAG strictly
    // best.
    let naive = variant_pass1(&merged, PromptVariant::Naive);
    let expert = variant_pass1(&merged, PromptVariant::Expert);
    let rag = variant_pass1(&merged, PromptVariant::RagAugmented);
    assert!(
        naive < expert && expert < rag,
        "per-variant pass@1 must be ordered: naive {naive:.3} < expert {expert:.3} < rag {rag:.3}"
    );

    // And the report surfaces the axis: one rollup line per tier.
    let rollup = report::variant_summary(&merged);
    for label in ["naive", "expert", "rag"] {
        assert!(rollup.contains(label), "rollup must list the {label} tier:\n{rollup}");
    }

    let _ = std::fs::remove_file(&cache);
}
