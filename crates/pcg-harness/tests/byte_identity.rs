//! Byte-identity battery: the default single-variant synthetic
//! configuration must be indistinguishable — config hashes, canonical
//! config JSON, cell ids, and projected records — from the harness as
//! it stood before the [`pcg_models::CandidateSource`] refactor and
//! the prompt-variant axis. The constants below were captured from the
//! pre-refactor tree; if one of these asserts fires, a default-path
//! artifact (journal, cache, shard partition) has silently re-keyed.

use pcg_core::plan::fnv1a;
use pcg_core::PromptVariant;
use pcg_harness::config::EvalConfig;
use pcg_harness::{eval, journal, record};
use pcg_models::{CandidateSource, SyntheticSource};

/// FNV-1a of the canonical config JSON, captured pre-refactor.
const HASH_FULL: u64 = 0xa30ab17c83ba8d19;
const HASH_QUICK: u64 = 0xae469d44b9474de6;
const HASH_SMOKE: u64 = 0x9effc2afc5257bb6;

/// The smoke config's canonical JSON, captured pre-refactor byte for
/// byte — the hash input itself, so a drift here explains any hash
/// drift above.
const JSON_SMOKE: &str = "{\"seed\":20240501,\"samples_low\":6,\"samples_high\":10,\
\"temp_low\":0.2,\"temp_high\":0.8,\"size_divisor\":64,\
\"timeout\":{\"secs\":20,\"nanos\":0},\"reps\":1,\"skip_high_temp\":false,\
\"skip_sweeps\":true,\"retry_flaky\":false,\"grace\":{\"secs\":2,\"nanos\":0},\
\"max_abandoned\":64,\"deadlock_rate\":0,\"stack_hog_rate\":0}";

/// FNV-1a of the deterministic record projection for the full zoo over
/// [`eval::smoke_tasks`] under the smoke config, captured pre-refactor.
/// (The raw record JSON is *not* pinned: it embeds measured timing
/// ratios, which are machine- and run-dependent by design.)
const PROJ_SMOKE_ZOO: u64 = 0x72f9b3782c8e40e1;

#[test]
fn config_hashes_and_bytes_match_the_pre_refactor_capture() {
    assert_eq!(journal::config_hash(&EvalConfig::full()), HASH_FULL);
    assert_eq!(journal::config_hash(&EvalConfig::quick()), HASH_QUICK);
    assert_eq!(journal::config_hash(&EvalConfig::smoke()), HASH_SMOKE);
    assert_eq!(serde_json::to_string(&EvalConfig::smoke()).unwrap(), JSON_SMOKE);
    // The empty source salt — every synthetic path — is the identity.
    assert_eq!(
        journal::config_hash_with(&EvalConfig::smoke(), &[]),
        HASH_SMOKE
    );
    assert_ne!(
        journal::config_hash_with(&EvalConfig::smoke(), b"salted"),
        HASH_SMOKE,
        "a non-empty salt must re-key the run"
    );
}

#[test]
fn default_plan_is_identical_across_source_representations() {
    let cfg = EvalConfig::smoke();
    let tasks = eval::smoke_tasks();
    let zoo = pcg_models::zoo();
    let via_slice = eval::plan_for(&cfg, zoo.as_slice(), Some(&tasks));
    let via_variants =
        eval::plan_for(&cfg, &SyntheticSource::zoo(&[PromptVariant::DEFAULT]), Some(&tasks));
    assert_eq!(via_slice.models(), via_variants.models());
    let ids = |p: &pcg_core::plan::WorkPlan| -> Vec<u64> {
        p.cells().map(|c| c.id.0).collect()
    };
    assert_eq!(ids(&via_slice), ids(&via_variants), "cell ids must not re-key");
    // And a variant grid *does* re-key (because the config differs).
    let grid_cfg = EvalConfig {
        prompt_variants: vec![PromptVariant::Naive, PromptVariant::Expert],
        ..EvalConfig::smoke()
    };
    let grid = eval::plan_for(
        &cfg,
        &SyntheticSource::zoo(&grid_cfg.prompt_variants),
        Some(&tasks),
    );
    assert_eq!(grid.models().len(), 14, "one row per (model, variant)");
    assert_ne!(journal::config_hash(&grid_cfg), HASH_SMOKE);
}

#[test]
fn smoke_zoo_projection_matches_the_pre_refactor_capture() {
    let cfg = EvalConfig::smoke();
    let zoo = pcg_models::zoo();
    let tasks = eval::smoke_tasks();
    let rec1 = eval::evaluate_jobs(&cfg, &zoo, Some(&tasks), 1);
    let rec8 = eval::evaluate_jobs(&cfg, &zoo, Some(&tasks), 8);
    assert_eq!(
        fnv1a(record::projection(&rec1).as_bytes()),
        PROJ_SMOKE_ZOO,
        "jobs=1 projection drifted from the pre-refactor bytes"
    );
    assert_eq!(
        fnv1a(record::projection(&rec8).as_bytes()),
        PROJ_SMOKE_ZOO,
        "jobs=8 projection drifted from the pre-refactor bytes"
    );
}

#[test]
fn default_variant_source_samples_exactly_like_the_zoo() {
    // The full-grid equality is covered stream-by-stream in
    // pcg-models; here we pin the harness-visible surface: identical
    // names, weights flags, and an identical sampled pool through the
    // trait object seam the coordinator actually uses.
    let zoo = pcg_models::zoo();
    let src = SyntheticSource::zoo(&[PromptVariant::DEFAULT]);
    assert_eq!(src.model_names(), zoo.as_slice().model_names());
    assert!(src.config_salt().is_empty());
    let spec = pcg_models::SampleSpec::new(0.2, 6, 20240501);
    for (i, _) in zoo.iter().enumerate() {
        for task in eval::smoke_tasks().into_iter().take(7) {
            assert_eq!(
                src.sample(i, task, &spec),
                zoo.as_slice().sample(i, task, &spec)
            );
        }
    }
}
