//! Replay-source round trip: dumping the synthetic zoo's candidate
//! pools to a directory and re-scoring them through
//! [`pcg_models::ReplaySource`] must reproduce the zoo run's verdicts
//! exactly. Both runs draw timing from one [`SharedRunner`], so the
//! comparison is byte-identity on the records — the same discipline
//! the shard-merge test applies — while the *keying* must differ: a
//! replay run carries a non-empty config salt, so its journals and
//! caches can never be confused with the default path's.

use pcg_harness::eval::{evaluate_with, smoke_tasks};
use pcg_harness::journal;
use pcg_harness::{EvalConfig, SharedRunner};
use pcg_models::{dump_pool, CandidateSource, ReplaySource, SampleSpec};
use std::path::PathBuf;

fn tmp_pool_dir() -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("pcgbench-replay-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn dumped_pools_rescore_to_identical_verdicts() {
    let cfg = EvalConfig::smoke();
    let tasks: Vec<_> = smoke_tasks().into_iter().take(7).collect();
    let zoo = pcg_models::zoo();
    let runner = SharedRunner::new(cfg.clone());

    // Reference: the live synthetic path.
    let (reference, _) = evaluate_with(&cfg, &zoo, Some(&tasks), 2, &runner);

    // Dump exactly the specs evaluation requests: the low-temperature
    // set and (skip_high_temp is off in the smoke config) the
    // high-temperature set.
    let dir = tmp_pool_dir();
    let specs = [
        SampleSpec::new(cfg.temp_low, cfg.samples_low, cfg.seed),
        SampleSpec::new(cfg.temp_high, cfg.samples_high, cfg.seed),
    ];
    dump_pool(&dir, zoo.as_slice(), &tasks, &specs).expect("dump pool");

    // Re-score from the directory, same shared runner.
    let pool = ReplaySource::open(&dir).expect("open dumped pool");
    assert_eq!(pool.model_names(), zoo.as_slice().model_names());
    let (replayed, _) = evaluate_with(&cfg, &pool, Some(&tasks), 2, &runner);
    assert_eq!(
        serde_json::to_string(&replayed).unwrap(),
        serde_json::to_string(&reference).unwrap(),
        "re-scoring the dumped pools must reproduce the zoo verdicts byte for byte"
    );

    // The pool re-keys the run: non-empty salt, shifted config hash,
    // and a second open sees the identical content hash (the salt is a
    // pure function of the dumped bytes).
    let salt = pool.config_salt();
    assert!(!salt.is_empty(), "a replay source must never reuse the default hash");
    assert_ne!(journal::config_hash_with(&cfg, &salt), journal::config_hash(&cfg));
    let reopened = ReplaySource::open(&dir).expect("reopen");
    assert_eq!(reopened.content_hash(), pool.content_hash());
    assert_eq!(reopened.config_salt(), salt);

    let _ = std::fs::remove_dir_all(&dir);
}
