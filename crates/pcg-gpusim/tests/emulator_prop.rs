//! Property tests: the SIMT emulator covers grids exactly, the phase
//! machine preserves barrier semantics, and the timing model behaves
//! monotonically.

use pcg_gpusim::{cuda, hip, BlockCtx, BlockKernel, GpuBuffer, Launch};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_thread_runs_exactly_once(grid in 1u32..40, block in 1u32..257) {
        let gpu = cuda::device();
        let total = (grid as usize) * (block as usize);
        let hits = GpuBuffer::<u32>::zeroed(total);
        gpu.launch_each(Launch::new(grid, block), |t, ctx| {
            ctx.atomic_add(&hits, t.global_id(), 1);
        });
        prop_assert!(hits.to_vec().iter().all(|&h| h == 1));
    }

    #[test]
    fn grid_stride_loop_covers_any_n(n in 1usize..5000, grid in 1u32..8, block in 1u32..65) {
        let gpu = hip::device();
        let out = GpuBuffer::<i64>::zeroed(n);
        gpu.launch_each(Launch::new(grid, block), |t, ctx| {
            let mut i = t.global_id();
            while i < n {
                ctx.write(&out, i, i as i64 + 1);
                i += t.grid_threads();
            }
        });
        prop_assert!(out.to_vec().iter().enumerate().all(|(i, &v)| v == i as i64 + 1));
    }

    #[test]
    fn block_tree_reduction_matches_sum(
        data in proptest::collection::vec(-100i64..100, 1..4000),
    ) {
        // Shared-memory tree reduction with phase-machine barriers.
        struct Sum {
            x: GpuBuffer<f64>,
            out: GpuBuffer<f64>,
            n: usize,
        }
        impl BlockKernel for Sum {
            fn phases(&self, cfg: &Launch) -> usize {
                1 + (cfg.block() as f64).log2().ceil() as usize + 1
            }
            fn phase(&self, phase: usize, blk: &BlockCtx) {
                let bd = blk.block_dim() as usize;
                let s = blk.shared();
                if phase == 0 {
                    blk.for_each_thread(|t| {
                        let i = t.global_id();
                        let v = if i < self.n { blk.read(&self.x, i) } else { 0.0 };
                        s.set(t.thread_idx as usize, v);
                    });
                } else {
                    let step = bd >> phase;
                    if step >= 1 {
                        blk.for_each_thread(|t| {
                            let tid = t.thread_idx as usize;
                            if tid < step {
                                s.set(tid, s.get(tid) + s.get(tid + step));
                            }
                        });
                    } else {
                        blk.for_each_thread(|t| {
                            if t.thread_idx == 0 {
                                blk.atomic_add(&self.out, 0, s.get(0));
                            }
                        });
                    }
                }
            }
        }
        let gpu = cuda::device();
        let xs: Vec<f64> = data.iter().map(|&x| x as f64).collect();
        let kernel = Sum {
            x: GpuBuffer::from_slice(&xs),
            out: GpuBuffer::zeroed(1),
            n: xs.len(),
        };
        // Power-of-two block so the tree halves cleanly.
        gpu.launch(Launch::over(xs.len(), 64).with_shared(64), &kernel);
        let want: f64 = xs.iter().sum();
        prop_assert!((kernel.out.load(0) - want).abs() < 1e-9 * want.abs().max(1.0));
    }

    #[test]
    fn model_time_monotone_in_bytes_at_fixed_shape(a in 1usize..2000, b in 1usize..2000) {
        // At a fixed launch shape (constant threads, so constant
        // utilization), more bytes may never be modeled as faster.
        // (Across *different* shapes occupancy steps legitimately make
        // a bigger problem faster, as on real devices.)
        let (small, big) = (a.min(b), a.max(b) + 1);
        let gpu = cuda::device();
        let run = |n: usize| {
            let x = GpuBuffer::<f64>::zeroed(n);
            gpu.launch_each(Launch::new(8, 64), |t, ctx| {
                let mut i = t.global_id();
                while i < n {
                    ctx.write(&x, i, 1.0);
                    i += t.grid_threads();
                }
            })
            .time
        };
        prop_assert!(run(big) >= run(small));
    }

    #[test]
    fn atomics_exact_under_any_grid(grid in 1u32..20, block in 1u32..129) {
        let gpu = cuda::device();
        let acc = GpuBuffer::<f64>::zeroed(1);
        let report = gpu.launch_each(Launch::new(grid, block), |_t, ctx| {
            ctx.atomic_add(&acc, 0, 1.0);
        });
        let total = (grid as usize * block as usize) as f64;
        prop_assert_eq!(acc.load(0), total);
        prop_assert_eq!(report.atomics, total as u64);
    }
}

/// The historical regression seed from `emulator_prop.proptest-regressions`
/// (`a = 63, b = 64`), pinned as a deterministic test: the vendored
/// proptest stub generates from name-keyed streams and does not replay
/// regression files, so the interesting boundary — a workload one
/// element past a full 8×64 grid pass — is encoded here explicitly.
#[test]
fn model_time_monotone_at_the_grid_boundary() {
    let gpu = cuda::device();
    let run = |n: usize| {
        let x = GpuBuffer::<f64>::zeroed(n);
        gpu.launch_each(Launch::new(8, 64), |t, ctx| {
            let mut i = t.global_id();
            while i < n {
                ctx.write(&x, i, 1.0);
                i += t.grid_threads();
            }
        })
        .time
    };
    // The shrunk pair (63, 65) plus its neighbors across the 512-thread
    // grid boundary.
    for (small, big) in [(63, 65), (63, 64), (511, 512), (512, 513)] {
        assert!(
            run(big) >= run(small),
            "model time must be monotone in bytes at a fixed shape ({small} vs {big})"
        );
    }
}
