//! Device profiles feeding the analytical timing model.

/// Performance characteristics of a simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Marketing name.
    pub name: &'static str,
    /// Peak global-memory bandwidth, bytes/second.
    pub mem_bandwidth: f64,
    /// Peak FP64 throughput, flops/second.
    pub flop_rate: f64,
    /// Fixed kernel-launch overhead, seconds.
    pub launch_overhead: f64,
    /// Cost per global atomic operation at full utilization, seconds.
    pub atomic_cost: f64,
    /// Threads needed to saturate the device (SMs x resident threads).
    pub saturation_threads: f64,
    /// Maximum threads per block accepted by [`crate::Launch`].
    pub max_block_threads: u32,
}

impl DeviceProfile {
    /// An NVIDIA A100-80GB-like profile (the paper's CUDA device).
    pub fn a100_like() -> DeviceProfile {
        DeviceProfile {
            name: "sim-a100",
            mem_bandwidth: 1.9e12,
            flop_rate: 9.7e12,
            launch_overhead: 4.0e-6,
            atomic_cost: 3.0e-9,
            saturation_threads: 108.0 * 2048.0,
            max_block_threads: 1024,
        }
    }

    /// An AMD MI50-like profile (the paper's HIP device).
    pub fn mi50_like() -> DeviceProfile {
        DeviceProfile {
            name: "sim-mi50",
            mem_bandwidth: 1.0e12,
            flop_rate: 6.6e12,
            launch_overhead: 6.0e-6,
            atomic_cost: 5.0e-9,
            saturation_threads: 60.0 * 2560.0,
            max_block_threads: 1024,
        }
    }

    /// Utilization factor for a launch of `threads` total threads: the
    /// fraction of peak throughput the grid can reach, with a floor so
    /// even one-thread launches make progress.
    pub fn utilization(&self, threads: u64) -> f64 {
        (threads as f64 / self.saturation_threads).clamp(1.0 / self.saturation_threads, 1.0)
    }

    /// Roofline kernel-time estimate. Atomics are charged at a flat
    /// per-operation cost (the atomic units serialize conflicting
    /// updates regardless of occupancy), added on top of the
    /// memory/compute roof.
    pub fn kernel_time(&self, threads: u64, bytes: u64, flops: u64, atomics: u64) -> f64 {
        let util = self.utilization(threads);
        let t_mem = bytes as f64 / (self.mem_bandwidth * util);
        let t_flop = flops as f64 / (self.flop_rate * util);
        let t_atomic = atomics as f64 * self.atomic_cost;
        self.launch_overhead + t_mem.max(t_flop) + t_atomic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_clamps() {
        let p = DeviceProfile::a100_like();
        assert!(p.utilization(1) > 0.0);
        assert!(p.utilization(1) < 1e-4);
        assert_eq!(p.utilization(10_000_000), 1.0);
    }

    #[test]
    fn memory_bound_kernel_scales_with_bytes() {
        let p = DeviceProfile::a100_like();
        let t1 = p.kernel_time(1 << 20, 1 << 20, 0, 0);
        let t2 = p.kernel_time(1 << 20, 1 << 28, 0, 0);
        assert!(t2 > t1 * 10.0);
    }

    #[test]
    fn small_launch_dominated_by_overhead() {
        let p = DeviceProfile::a100_like();
        let t = p.kernel_time(32, 256, 0, 0);
        assert!(t < p.launch_overhead * 2.0);
        assert!(t >= p.launch_overhead);
    }

    #[test]
    fn compute_bound_uses_flop_roof() {
        let p = DeviceProfile::a100_like();
        let mem_only = p.kernel_time(1 << 22, 1 << 20, 0, 0);
        let with_flops = p.kernel_time(1 << 22, 1 << 20, 1 << 40, 0);
        assert!(with_flops > mem_only * 100.0);
    }

    #[test]
    fn mi50_slower_than_a100_on_bandwidth() {
        let a = DeviceProfile::a100_like();
        let m = DeviceProfile::mi50_like();
        let bytes = 1u64 << 30;
        assert!(m.kernel_time(1 << 22, bytes, 0, 0) > a.kernel_time(1 << 22, bytes, 0, 0));
    }
}
