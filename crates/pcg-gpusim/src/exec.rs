//! Kernel launch and SIMT emulation.

use crate::buffer::GpuBuffer;
use crate::device::DeviceProfile;
use crate::elem::GpuElem;
use pcg_core::{usage, ExecutionModel};
use pcg_shmem::{AtomicF64, Pool, Schedule};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// A kernel launch configuration (`<<<grid, block, shared>>>` analog).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Launch {
    grid: u32,
    block: u32,
    shared_f64: usize,
}

impl Launch {
    /// `grid` blocks of `block` threads.
    pub fn new(grid: u32, block: u32) -> Launch {
        assert!(grid >= 1, "grid must have at least one block");
        assert!(block >= 1, "block must have at least one thread");
        Launch { grid, block, shared_f64: 0 }
    }

    /// Enough `block`-sized blocks to cover `n` items (the paper's
    /// "at least as many threads as values in the array").
    pub fn over(n: usize, block: u32) -> Launch {
        let grid = (n as u64).div_ceil(block as u64).max(1);
        Launch::new(u32::try_from(grid).expect("grid too large"), block)
    }

    /// Request `n` f64 slots of block-shared memory.
    pub fn with_shared(mut self, n: usize) -> Launch {
        self.shared_f64 = n;
        self
    }

    /// Blocks in the grid.
    pub fn grid(&self) -> u32 {
        self.grid
    }

    /// Threads per block.
    pub fn block(&self) -> u32 {
        self.block
    }

    /// Total threads launched.
    pub fn total_threads(&self) -> u64 {
        self.grid as u64 * self.block as u64
    }
}

/// Per-launch observed traffic and the modeled kernel time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchReport {
    /// Modeled kernel time in seconds.
    pub time: f64,
    /// Bytes moved through global memory.
    pub bytes: u64,
    /// Explicitly charged floating-point operations.
    pub flops: u64,
    /// Global atomic operations.
    pub atomics: u64,
    /// Total threads launched.
    pub threads: u64,
}

/// Block-shared memory (`__shared__ double[]` analog). Blocks are
/// emulated by a single host thread, so plain `Cell`s suffice.
pub struct SharedMem {
    data: Vec<Cell<f64>>,
}

impl SharedMem {
    fn new(n: usize) -> SharedMem {
        SharedMem { data: (0..n).map(|_| Cell::new(0.0)).collect() }
    }

    /// Slots available.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether no shared memory was requested.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read slot `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.data[i].get()
    }

    /// Write slot `i`.
    pub fn set(&self, i: usize, v: f64) {
        self.data[i].set(v);
    }
}

/// One simulated GPU thread's coordinates.
#[derive(Debug, Clone, Copy)]
pub struct GpuThread {
    /// `threadIdx.x`.
    pub thread_idx: u32,
    /// `blockIdx.x`.
    pub block_idx: u32,
    /// `blockDim.x`.
    pub block_dim: u32,
    /// `gridDim.x`.
    pub grid_dim: u32,
}

impl GpuThread {
    /// `blockIdx.x * blockDim.x + threadIdx.x`.
    pub fn global_id(&self) -> usize {
        (self.block_idx as usize) * (self.block_dim as usize) + self.thread_idx as usize
    }

    /// Total threads in the grid (the grid-stride-loop bound).
    pub fn grid_threads(&self) -> usize {
        self.grid_dim as usize * self.block_dim as usize
    }
}

/// Per-block execution context: dims, shared memory, traffic meters.
pub struct BlockCtx {
    block_idx: u32,
    block_dim: u32,
    grid_dim: u32,
    shared: SharedMem,
    bytes: Cell<u64>,
    flops: Cell<u64>,
    atomics: Cell<u64>,
}

impl BlockCtx {
    /// `blockIdx.x`.
    pub fn block_idx(&self) -> u32 {
        self.block_idx
    }

    /// `blockDim.x`.
    pub fn block_dim(&self) -> u32 {
        self.block_dim
    }

    /// `gridDim.x`.
    pub fn grid_dim(&self) -> u32 {
        self.grid_dim
    }

    /// Block-shared memory.
    pub fn shared(&self) -> &SharedMem {
        &self.shared
    }

    /// Run `f` for every thread of this block (within one phase).
    pub fn for_each_thread(&self, mut f: impl FnMut(GpuThread)) {
        for t in 0..self.block_dim {
            f(GpuThread {
                thread_idx: t,
                block_idx: self.block_idx,
                block_dim: self.block_dim,
                grid_dim: self.grid_dim,
            });
        }
    }

    /// Metered global-memory read.
    pub fn read<T: GpuElem>(&self, buf: &GpuBuffer<T>, i: usize) -> T {
        self.bytes.set(self.bytes.get() + T::BYTES as u64);
        buf.load(i)
    }

    /// Metered global-memory write.
    pub fn write<T: GpuElem>(&self, buf: &GpuBuffer<T>, i: usize, v: T) {
        self.bytes.set(self.bytes.get() + T::BYTES as u64);
        buf.store(i, v);
    }

    /// Metered `atomicAdd`.
    pub fn atomic_add<T: GpuElem>(&self, buf: &GpuBuffer<T>, i: usize, v: T) -> T {
        self.bytes.set(self.bytes.get() + T::BYTES as u64);
        self.atomics.set(self.atomics.get() + 1);
        buf.fetch_add(i, v)
    }

    /// Metered `atomicMax`.
    pub fn atomic_max<T: GpuElem>(&self, buf: &GpuBuffer<T>, i: usize, v: T) -> T {
        self.bytes.set(self.bytes.get() + T::BYTES as u64);
        self.atomics.set(self.atomics.get() + 1);
        buf.fetch_max(i, v)
    }

    /// Charge `n` floating-point operations to the roofline model
    /// (compute-bound kernels such as GEMM call this).
    pub fn charge_flops(&self, n: u64) {
        self.flops.set(self.flops.get() + n);
    }
}

/// A multi-phase block kernel. Phases are separated by implicit
/// `__syncthreads()`: the emulator completes phase `k` for all threads
/// of a block before starting phase `k+1`; data that must survive a
/// barrier lives in [`SharedMem`] or global memory, as on real GPUs.
pub trait BlockKernel: Sync {
    /// Number of barrier-separated phases.
    fn phases(&self, cfg: &Launch) -> usize;
    /// Execute one phase for an entire block (iterate threads with
    /// [`BlockCtx::for_each_thread`]).
    fn phase(&self, phase: usize, blk: &BlockCtx);
}

/// A simulated GPU device.
pub struct Gpu {
    profile: DeviceProfile,
    model: ExecutionModel,
    pool: Pool,
    clock: AtomicF64,
}

impl Gpu {
    pub(crate) fn with_profile(profile: DeviceProfile, model: ExecutionModel) -> Gpu {
        let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Gpu { profile, model, pool: Pool::new(host), clock: AtomicF64::new(0.0) }
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Accumulated modeled kernel time since construction/reset
    /// (the `cudaEventElapsedTime` analog around the hot region).
    pub fn elapsed(&self) -> f64 {
        self.clock.load()
    }

    /// Reset the device clock.
    pub fn reset_clock(&self) {
        self.clock.store(0.0);
    }

    /// Re-aim the host emulation pool at the calling candidate's usage
    /// sink and cancel token (see [`pcg_shmem::Pool::retarget`]). Called
    /// by the substrate lease layer when a warm device is checked out.
    pub fn retarget(&self) {
        self.pool.retarget();
    }

    /// Add modeled time to the device clock directly (used by fallback
    /// wrappers that model a degenerate launch without emulating it).
    pub fn charge_time(&self, dt: f64) {
        self.clock.fetch_add(dt.max(0.0));
    }

    /// Launch a single-phase kernel given as a per-thread closure.
    pub fn launch_each<F>(&self, cfg: Launch, f: F) -> LaunchReport
    where
        F: Fn(GpuThread, &BlockCtx) + Sync,
    {
        struct EachKernel<F>(F);
        impl<F: Fn(GpuThread, &BlockCtx) + Sync> BlockKernel for EachKernel<F> {
            fn phases(&self, _cfg: &Launch) -> usize {
                1
            }
            fn phase(&self, _phase: usize, blk: &BlockCtx) {
                blk.for_each_thread(|t| (self.0)(t, blk));
            }
        }
        self.launch(cfg, &EachKernel(f))
    }

    /// Launch a multi-phase block kernel.
    pub fn launch<K: BlockKernel>(&self, cfg: Launch, kernel: &K) -> LaunchReport {
        usage::record(self.model);
        // A killed candidate stuck in a kernel-launch loop unwinds here;
        // blocks of an in-flight launch unwind at the pool's per-chunk
        // checks (one block per dynamic chunk).
        pcg_core::cancel::check_current();
        assert!(
            cfg.block <= self.profile.max_block_threads,
            "block of {} exceeds device limit {}",
            cfg.block,
            self.profile.max_block_threads
        );
        let bytes = AtomicU64::new(0);
        let flops = AtomicU64::new(0);
        let atomics = AtomicU64::new(0);
        let nphases = kernel.phases(&cfg).max(1);
        self.pool.parallel_for(0..cfg.grid as usize, Schedule::Dynamic { chunk: 1 }, |b| {
            let blk = BlockCtx {
                block_idx: b as u32,
                block_dim: cfg.block,
                grid_dim: cfg.grid,
                shared: SharedMem::new(cfg.shared_f64),
                bytes: Cell::new(0),
                flops: Cell::new(0),
                atomics: Cell::new(0),
            };
            for phase in 0..nphases {
                kernel.phase(phase, &blk);
            }
            bytes.fetch_add(blk.bytes.get(), Ordering::Relaxed);
            flops.fetch_add(blk.flops.get(), Ordering::Relaxed);
            atomics.fetch_add(blk.atomics.get(), Ordering::Relaxed);
        });
        let report = LaunchReport {
            bytes: bytes.into_inner(),
            flops: flops.into_inner(),
            atomics: atomics.into_inner(),
            threads: cfg.total_threads(),
            time: 0.0,
        };
        let time = self.profile.kernel_time(report.threads, report.bytes, report.flops, report.atomics);
        self.clock.fetch_add(time);
        LaunchReport { time, ..report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> Gpu {
        Gpu::with_profile(DeviceProfile::a100_like(), ExecutionModel::Cuda)
    }

    #[test]
    fn launch_shapes() {
        assert_eq!(Launch::over(1000, 256).grid(), 4);
        assert_eq!(Launch::over(1024, 256).grid(), 4);
        assert_eq!(Launch::over(1, 256).grid(), 1);
        assert_eq!(Launch::new(2, 128).total_threads(), 256);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_block_rejected() {
        let _ = Launch::new(1, 0);
    }

    #[test]
    fn saxpy_like_map() {
        let g = gpu();
        let n = 10_000usize;
        let x = GpuBuffer::from_slice(&(0..n).map(|i| i as f64).collect::<Vec<_>>());
        let y = GpuBuffer::<f64>::zeroed(n);
        let report = g.launch_each(Launch::over(n, 256), |t, ctx| {
            let i = t.global_id();
            if i < x.len() {
                ctx.write(&y, i, 2.0 * ctx.read(&x, i) + 1.0);
            }
        });
        assert!(y.to_vec().iter().enumerate().all(|(i, &v)| v == 2.0 * i as f64 + 1.0));
        assert_eq!(report.bytes, (n * 16) as u64);
        assert!(report.time > 0.0);
        assert_eq!(g.elapsed(), report.time);
    }

    #[test]
    fn grid_stride_loop() {
        let g = gpu();
        let n = 5000usize;
        let out = GpuBuffer::<i64>::zeroed(n);
        g.launch_each(Launch::new(4, 64), |t, ctx| {
            let mut i = t.global_id();
            while i < out.len() {
                ctx.write(&out, i, i as i64);
                i += t.grid_threads();
            }
        });
        assert!(out.to_vec().iter().enumerate().all(|(i, &v)| v == i as i64));
    }

    #[test]
    fn atomic_histogram() {
        let g = gpu();
        let n = 8192usize;
        let data = GpuBuffer::from_slice(&(0..n).map(|i| (i % 16) as u32).collect::<Vec<_>>());
        let hist = GpuBuffer::<u32>::zeroed(16);
        let report = g.launch_each(Launch::over(n, 128), |t, ctx| {
            let i = t.global_id();
            if i < data.len() {
                let bin = ctx.read(&data, i) as usize;
                ctx.atomic_add(&hist, bin, 1);
            }
        });
        assert!(hist.to_vec().iter().all(|&c| c == (n / 16) as u32));
        assert_eq!(report.atomics, n as u64);
    }

    #[test]
    fn phase_machine_block_reduction() {
        // Classic shared-memory tree reduction with __syncthreads
        // between halving steps, expressed as phases.
        struct BlockSum {
            x: GpuBuffer<f64>,
            out: GpuBuffer<f64>,
            block: u32,
        }
        impl BlockKernel for BlockSum {
            fn phases(&self, _cfg: &Launch) -> usize {
                1 + (self.block as f64).log2().ceil() as usize + 1
            }
            fn phase(&self, phase: usize, blk: &BlockCtx) {
                let bd = blk.block_dim() as usize;
                if phase == 0 {
                    blk.for_each_thread(|t| {
                        let i = t.global_id();
                        let v = if i < self.x.len() { blk.read(&self.x, i) } else { 0.0 };
                        blk.shared().set(t.thread_idx as usize, v);
                    });
                    return;
                }
                let step = bd >> phase;
                if step >= 1 {
                    blk.for_each_thread(|t| {
                        let tid = t.thread_idx as usize;
                        if tid < step {
                            let s = blk.shared();
                            s.set(tid, s.get(tid) + s.get(tid + step));
                        }
                    });
                } else {
                    // Final phase: thread 0 contributes the block total.
                    blk.atomic_add(&self.out, 0, blk.shared().get(0));
                }
            }
        }
        let g = gpu();
        let n = 4096usize;
        let block = 128u32;
        let kernel = BlockSum {
            x: GpuBuffer::from_slice(&(0..n).map(|i| i as f64).collect::<Vec<_>>()),
            out: GpuBuffer::zeroed(1),
            block,
        };
        g.launch(Launch::over(n, block).with_shared(block as usize), &kernel);
        let want = (n * (n - 1) / 2) as f64;
        assert_eq!(kernel.out.load(0), want);
    }

    #[test]
    fn clock_accumulates_and_resets() {
        let g = gpu();
        let x = GpuBuffer::<f64>::zeroed(1024);
        g.launch_each(Launch::over(1024, 256), |t, ctx| {
            let i = t.global_id();
            ctx.write(&x, i, 1.0);
        });
        let t1 = g.elapsed();
        g.launch_each(Launch::over(1024, 256), |t, ctx| {
            let i = t.global_id();
            ctx.write(&x, i, 2.0);
        });
        assert!(g.elapsed() > t1);
        g.reset_clock();
        assert_eq!(g.elapsed(), 0.0);
    }

    #[test]
    fn bigger_data_costs_more_model_time() {
        let g = gpu();
        let run = |n: usize| {
            let x = GpuBuffer::<f64>::zeroed(n);
            g.launch_each(Launch::over(n, 256), |t, ctx| {
                let i = t.global_id();
                if i < x.len() {
                    ctx.write(&x, i, 1.0);
                }
            })
            .time
        };
        assert!(run(1 << 22) > run(1 << 12));
    }

    #[test]
    #[should_panic(expected = "exceeds device limit")]
    fn oversized_block_rejected() {
        let g = gpu();
        g.launch_each(Launch::new(1, 2048), |_, _| {});
    }

    #[test]
    fn cancelled_launch_loop_unwinds() {
        // A candidate relaunching kernels forever: once the token fires,
        // the next launch entry must unwind with the Cancelled marker.
        let token = pcg_core::cancel::CancelToken::new();
        let _g = pcg_core::cancel::install_token(Some(token.clone()));
        let g = gpu();
        let x = GpuBuffer::<f64>::zeroed(64);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
            g.launch_each(Launch::over(64, 32), |t, ctx| {
                if t.global_id() < x.len() {
                    ctx.write(&x, t.global_id(), 1.0);
                }
            });
            token.cancel();
        }));
        assert!(pcg_core::cancel::is_cancel_payload(result.unwrap_err().as_ref()));
    }
}
