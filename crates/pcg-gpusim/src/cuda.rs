//! CUDA-flavored frontend: an A100-like device.
//!
//! CUDA and HIP expose nearly identical APIs over different hardware; the
//! paper exploits that similarity (its CUDA and HIP prompts differ only
//! in includes and compiler). Here both frontends share the emulator and
//! differ only in device profile and usage attribution.

use crate::device::DeviceProfile;
use crate::exec::Gpu;
use pcg_core::ExecutionModel;

/// Open the simulated CUDA device (A100-like).
pub fn device() -> Gpu {
    Gpu::with_profile(DeviceProfile::a100_like(), ExecutionModel::Cuda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcg_core::usage::UsageScope;

    #[test]
    fn cuda_device_profile_and_usage() {
        let scope = UsageScope::begin();
        let gpu = device();
        assert_eq!(gpu.profile().name, "sim-a100");
        let buf = crate::GpuBuffer::<f64>::zeroed(64);
        gpu.launch_each(crate::Launch::over(64, 32), |t, ctx| {
            let i = t.global_id();
            ctx.write(&buf, i, 1.0);
        });
        let delta = scope.finish();
        assert!(delta.used_required_api(ExecutionModel::Cuda));
    }
}
