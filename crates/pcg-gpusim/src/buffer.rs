//! GPU global-memory buffers.
//!
//! A [`GpuBuffer`] is the analog of a `cudaMalloc`'d array handed to a
//! kernel as a raw pointer: shared across all blocks, element accesses
//! relaxed-atomic. `Clone` aliases the same memory (pointer semantics).

use crate::elem::GpuElem;
use std::cell::UnsafeCell;
use std::sync::Arc;

/// Device global memory holding `len` elements of `T`.
pub struct GpuBuffer<T: GpuElem> {
    data: Arc<[UnsafeCell<T>]>,
}

// SAFETY: all element accesses go through the atomic operations of
// `GpuElem`, so concurrent use from emulated blocks is well-defined.
unsafe impl<T: GpuElem> Sync for GpuBuffer<T> {}
unsafe impl<T: GpuElem> Send for GpuBuffer<T> {}

impl<T: GpuElem> Clone for GpuBuffer<T> {
    fn clone(&self) -> GpuBuffer<T> {
        GpuBuffer { data: Arc::clone(&self.data) }
    }
}

impl<T: GpuElem> GpuBuffer<T> {
    /// Allocate zero/default-initialized device memory.
    pub fn zeroed(len: usize) -> GpuBuffer<T> {
        GpuBuffer { data: (0..len).map(|_| UnsafeCell::new(T::default())).collect() }
    }

    /// Allocate and copy from host (`cudaMemcpy` host-to-device analog).
    pub fn from_slice(src: &[T]) -> GpuBuffer<T> {
        GpuBuffer { data: src.iter().map(|&x| UnsafeCell::new(x)).collect() }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Relaxed-atomic read of element `i`.
    pub fn load(&self, i: usize) -> T {
        unsafe { T::atomic_load(self.data[i].get()) }
    }

    /// Relaxed-atomic write of element `i`.
    pub fn store(&self, i: usize, v: T) {
        unsafe { T::atomic_store(self.data[i].get(), v) }
    }

    /// Atomic add to element `i`, returning the previous value
    /// (`atomicAdd` analog).
    pub fn fetch_add(&self, i: usize, v: T) -> T {
        unsafe { T::atomic_add(self.data[i].get(), v) }
    }

    /// Atomic max on element `i`, returning the previous value
    /// (`atomicMax` analog).
    pub fn fetch_max(&self, i: usize, v: T) -> T {
        unsafe { T::atomic_max(self.data[i].get(), v) }
    }

    /// Copy device memory back to host (`cudaMemcpy` device-to-host).
    pub fn to_vec(&self) -> Vec<T> {
        (0..self.len()).map(|i| self.load(i)).collect()
    }

    /// Overwrite device memory from host.
    pub fn copy_from(&self, src: &[T]) {
        assert_eq!(src.len(), self.len(), "copy_from length mismatch");
        for (i, &x) in src.iter().enumerate() {
            self.store(i, x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let b = GpuBuffer::from_slice(&[1.0f64, 2.0]);
        assert_eq!(b.to_vec(), vec![1.0, 2.0]);
        b.store(0, 5.0);
        assert_eq!(b.load(0), 5.0);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn clone_aliases() {
        let a: GpuBuffer<i64> = GpuBuffer::zeroed(3);
        let b = a.clone();
        a.store(1, 9);
        assert_eq!(b.load(1), 9);
    }

    #[test]
    fn atomic_rmw() {
        let b: GpuBuffer<u32> = GpuBuffer::zeroed(1);
        assert_eq!(b.fetch_add(0, 5), 0);
        assert_eq!(b.fetch_add(0, 5), 5);
        b.fetch_max(0, 3);
        assert_eq!(b.load(0), 10);
        b.fetch_max(0, 42);
        assert_eq!(b.load(0), 42);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn copy_from_checks() {
        let b: GpuBuffer<f64> = GpuBuffer::zeroed(2);
        b.copy_from(&[1.0]);
    }
}
