//! # pcg-gpusim
//!
//! CUDA/HIP-analog GPU substrate for PCGBench-rs: a deterministic SIMT
//! *emulator* paired with an analytical device timing model.
//!
//! ## Execution model
//!
//! Kernels launch over a grid of thread blocks ([`Launch`]). Correctness
//! is real: every simulated GPU thread executes the kernel body against
//! shared [`GpuBuffer`] global memory, whose accesses are relaxed atomics
//! (the GPU memory model — concurrent conflicting writes are
//! last-writer-wins per element, never undefined behavior). Block-level
//! `__syncthreads()` is expressed with the **phase machine**: a
//! [`BlockKernel`] splits its body into barrier-separated phases; the
//! emulator runs all threads of a block through phase *k* before any
//! enters phase *k+1*, with block-shared [`SharedMem`] persisting across
//! phases. Blocks are emulated in parallel on host threads.
//!
//! ## Timing model
//!
//! Wall-clock emulation speed says nothing about real GPU speed, so
//! kernel time is computed analytically from observed execution:
//! bytes moved through global memory (tracked automatically by the
//! [`BlockCtx`] accessors), explicitly charged flops, atomic traffic,
//! and launch overhead, combined roofline-style under an occupancy
//! (utilization) factor derived from the grid size and the
//! [`DeviceProfile`]. Two profiles mirror the paper's hardware: an
//! A100-like device behind the [`cuda`] frontend and an MI50-like device
//! behind the [`hip`] frontend; the APIs are deliberately near-identical,
//! as CUDA and HIP are.
//!
//! ```
//! use pcg_gpusim::cuda;
//!
//! let gpu = cuda::device();
//! let x = pcg_gpusim::GpuBuffer::from_slice(&[1.0f64, 2.0, 3.0, 4.0]);
//! let y = pcg_gpusim::GpuBuffer::<f64>::zeroed(4);
//! gpu.launch_each(pcg_gpusim::Launch::over(4, 2), |t, ctx| {
//!     let i = t.global_id();
//!     if i < x.len() {
//!         ctx.write(&y, i, 2.0 * ctx.read(&x, i));
//!     }
//! });
//! assert_eq!(y.to_vec(), vec![2.0, 4.0, 6.0, 8.0]);
//! assert!(gpu.elapsed() > 0.0);
//! ```

mod buffer;
mod device;
mod elem;
mod exec;

pub mod cuda;
pub mod hip;

pub use buffer::GpuBuffer;
pub use device::DeviceProfile;
pub use elem::GpuElem;
pub use exec::{BlockCtx, BlockKernel, Gpu, GpuThread, Launch, LaunchReport, SharedMem};
