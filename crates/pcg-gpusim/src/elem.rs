//! Element types storable in GPU global memory.
//!
//! All global-memory traffic goes through relaxed atomics so that the
//! emulator's concurrent block execution is free of undefined behavior
//! while faithfully exhibiting GPU memory semantics (racy conflicting
//! writes resolve to one of the written values).

use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, Ordering};

/// A scalar that can live in [`crate::GpuBuffer`] global memory.
///
/// # Safety
/// Implementations must perform genuinely atomic operations on the
/// pointed-to storage; `PTR` casts rely on identical layout between the
/// element and its atomic representation.
pub unsafe trait GpuElem: Copy + Send + Sync + Default + PartialEq + std::fmt::Debug + 'static {
    /// Size in bytes (drives the memory-traffic model).
    const BYTES: usize;
    /// Atomic relaxed load.
    ///
    /// # Safety
    /// `ptr` must point to valid, properly aligned storage of `Self`.
    unsafe fn atomic_load(ptr: *mut Self) -> Self;
    /// Atomic relaxed store.
    ///
    /// # Safety
    /// `ptr` must point to valid, properly aligned storage of `Self`.
    unsafe fn atomic_store(ptr: *mut Self, v: Self);
    /// Atomic add, returning the previous value.
    ///
    /// # Safety
    /// `ptr` must point to valid, properly aligned storage of `Self`.
    unsafe fn atomic_add(ptr: *mut Self, v: Self) -> Self;
    /// Atomic max, returning the previous value.
    ///
    /// # Safety
    /// `ptr` must point to valid, properly aligned storage of `Self`.
    unsafe fn atomic_max(ptr: *mut Self, v: Self) -> Self;
}

unsafe impl GpuElem for f64 {
    const BYTES: usize = 8;
    unsafe fn atomic_load(ptr: *mut f64) -> f64 {
        f64::from_bits(AtomicU64::from_ptr(ptr.cast()).load(Ordering::Relaxed))
    }
    unsafe fn atomic_store(ptr: *mut f64, v: f64) {
        AtomicU64::from_ptr(ptr.cast()).store(v.to_bits(), Ordering::Relaxed);
    }
    unsafe fn atomic_add(ptr: *mut f64, v: f64) -> f64 {
        let a = AtomicU64::from_ptr(ptr.cast());
        let mut cur = a.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match a.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(prev) => return f64::from_bits(prev),
                Err(now) => cur = now,
            }
        }
    }
    unsafe fn atomic_max(ptr: *mut f64, v: f64) -> f64 {
        let a = AtomicU64::from_ptr(ptr.cast());
        let mut cur = a.load(Ordering::Relaxed);
        loop {
            let next = f64::from_bits(cur).max(v).to_bits();
            match a.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(prev) => return f64::from_bits(prev),
                Err(now) => cur = now,
            }
        }
    }
}

unsafe impl GpuElem for i64 {
    const BYTES: usize = 8;
    unsafe fn atomic_load(ptr: *mut i64) -> i64 {
        AtomicI64::from_ptr(ptr).load(Ordering::Relaxed)
    }
    unsafe fn atomic_store(ptr: *mut i64, v: i64) {
        AtomicI64::from_ptr(ptr).store(v, Ordering::Relaxed);
    }
    unsafe fn atomic_add(ptr: *mut i64, v: i64) -> i64 {
        AtomicI64::from_ptr(ptr).fetch_add(v, Ordering::AcqRel)
    }
    unsafe fn atomic_max(ptr: *mut i64, v: i64) -> i64 {
        AtomicI64::from_ptr(ptr).fetch_max(v, Ordering::AcqRel)
    }
}

unsafe impl GpuElem for u32 {
    const BYTES: usize = 4;
    unsafe fn atomic_load(ptr: *mut u32) -> u32 {
        AtomicU32::from_ptr(ptr).load(Ordering::Relaxed)
    }
    unsafe fn atomic_store(ptr: *mut u32, v: u32) {
        AtomicU32::from_ptr(ptr).store(v, Ordering::Relaxed);
    }
    unsafe fn atomic_add(ptr: *mut u32, v: u32) -> u32 {
        AtomicU32::from_ptr(ptr).fetch_add(v, Ordering::AcqRel)
    }
    unsafe fn atomic_max(ptr: *mut u32, v: u32) -> u32 {
        AtomicU32::from_ptr(ptr).fetch_max(v, Ordering::AcqRel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_atomic_ops() {
        let mut x = 1.5f64;
        let p = &mut x as *mut f64;
        unsafe {
            assert_eq!(f64::atomic_load(p), 1.5);
            f64::atomic_store(p, 2.5);
            assert_eq!(f64::atomic_add(p, 1.0), 2.5);
            assert_eq!(f64::atomic_load(p), 3.5);
            f64::atomic_max(p, 10.0);
            assert_eq!(f64::atomic_load(p), 10.0);
            f64::atomic_max(p, 5.0);
            assert_eq!(f64::atomic_load(p), 10.0);
        }
    }

    #[test]
    fn i64_and_u32_atomic_ops() {
        let mut a = 5i64;
        let mut b = 7u32;
        unsafe {
            assert_eq!(i64::atomic_add(&mut a, -2), 5);
            assert_eq!(i64::atomic_load(&mut a), 3);
            i64::atomic_max(&mut a, 100);
            assert_eq!(i64::atomic_load(&mut a), 100);
            assert_eq!(u32::atomic_add(&mut b, 3), 7);
            assert_eq!(u32::atomic_load(&mut b), 10);
        }
    }

    #[test]
    fn contended_f64_add_is_exact() {
        let mut x = 0.0f64;
        let p = SendPtr(&mut x as *mut f64);
        struct SendPtr(*mut f64);
        unsafe impl Send for SendPtr {}
        unsafe impl Sync for SendPtr {}
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = &p;
                s.spawn(move || {
                    for _ in 0..10_000 {
                        unsafe { f64::atomic_add(p.0, 1.0) };
                    }
                });
            }
        });
        assert_eq!(x, 40_000.0);
    }
}
