//! HIP-flavored frontend: an MI50-like device.
//!
//! See [`crate::cuda`] — the two frontends mirror the near-identity of
//! CUDA and HIP, sharing the emulator with a different device profile.

use crate::device::DeviceProfile;
use crate::exec::Gpu;
use pcg_core::ExecutionModel;

/// Open the simulated HIP device (MI50-like).
pub fn device() -> Gpu {
    Gpu::with_profile(DeviceProfile::mi50_like(), ExecutionModel::Hip)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcg_core::usage::UsageScope;

    #[test]
    fn hip_device_profile_and_usage() {
        let scope = UsageScope::begin();
        let gpu = device();
        assert_eq!(gpu.profile().name, "sim-mi50");
        let buf = crate::GpuBuffer::<i64>::zeroed(16);
        gpu.launch_each(crate::Launch::over(16, 16), |t, ctx| {
            let i = t.global_id();
            ctx.write(&buf, i, i as i64);
        });
        let delta = scope.finish();
        assert!(delta.used_required_api(ExecutionModel::Hip));
        assert!(!buf.to_vec().is_empty());
    }

    #[test]
    fn hip_kernels_slower_than_cuda_for_same_traffic() {
        let c = crate::cuda::device();
        let h = device();
        let n = 1usize << 20;
        let run = |gpu: &Gpu| {
            let x = crate::GpuBuffer::<f64>::zeroed(n);
            gpu.launch_each(crate::Launch::over(n, 256), |t, ctx| {
                let i = t.global_id();
                if i < x.len() {
                    ctx.write(&x, i, 1.0);
                }
            })
            .time
        };
        assert!(run(&h) > run(&c));
    }
}
