//! Property tests: pattern dispatches agree with serial oracles for
//! arbitrary shapes and operator choices.

use pcg_patterns::{ExecSpace, ScatterView, View};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn scan_matches_serial_for_sum_and_min(
        data in proptest::collection::vec(-50f64..50.0, 0..1200),
        threads in 1usize..7,
    ) {
        let space = ExecSpace::new(threads);
        let n = data.len();
        let data_ref = &data;

        // Inclusive sum scan.
        let out: View<f64> = View::new("out", n);
        let o2 = out.clone();
        let total = space.parallel_scan(
            n,
            0.0,
            |i| data_ref[i],
            |a, b| a + b,
            move |i, v| unsafe { o2.set(i, v) },
        );
        let mut acc = 0.0;
        let got = out.to_vec();
        for i in 0..n {
            acc += data_ref[i];
            prop_assert!((got[i] - acc).abs() < 1e-9 * acc.abs().max(1.0));
        }
        prop_assert!((total - acc).abs() < 1e-9 * acc.abs().max(1.0));

        // Inclusive min scan (idempotent op: catches double-counting).
        let out: View<f64> = View::new("out", n);
        let o2 = out.clone();
        space.parallel_scan(
            n,
            f64::INFINITY,
            |i| data_ref[i],
            f64::min,
            move |i, v| unsafe { o2.set(i, v) },
        );
        let mut m = f64::INFINITY;
        let got = out.to_vec();
        for i in 0..n {
            m = m.min(data_ref[i]);
            prop_assert_eq!(got[i], m);
        }
    }

    #[test]
    fn md_range_covers_exactly(rows in 0usize..60, cols in 0usize..60) {
        let space = ExecSpace::new(4);
        let m: pcg_patterns::View2D<i64> = pcg_patterns::View2D::new("m", rows.max(1), cols.max(1));
        let m2 = m.clone();
        space.parallel_for_2d(rows.max(1), cols.max(1), |r, c| unsafe {
            m2.set(r, c, (r * cols.max(1) + c) as i64 + 1)
        });
        let v = m.to_vec();
        prop_assert!(v.iter().enumerate().all(|(k, &x)| x == k as i64 + 1));
    }

    #[test]
    fn scatter_view_totals_match_direct_histogram(
        bins in proptest::collection::vec(0usize..16, 0..2000),
        replicas in 1usize..6,
    ) {
        let space = ExecSpace::new(4);
        let scatter: ScatterView<i64> = ScatterView::new(16, replicas);
        let bins_ref = &bins;
        let scatter_ref = &scatter;
        space.parallel_for_teams(8, |team| {
            let per = bins_ref.len().div_ceil(8).max(1);
            let lo = (team.league_rank() * per).min(bins_ref.len());
            let hi = ((team.league_rank() + 1) * per).min(bins_ref.len());
            let mut acc = scatter_ref.access();
            for &b in &bins_ref[lo..hi] {
                acc.add(b, 1);
            }
        });
        let mut got = vec![0i64; 16];
        scatter.contribute(&mut got);
        let mut want = vec![0i64; 16];
        for &b in bins_ref {
            want[b] += 1;
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn reduce_agrees_between_thread_counts(
        data in proptest::collection::vec(-100i64..100, 0..1000),
    ) {
        let a = ExecSpace::new(1);
        let b = ExecSpace::new(6);
        let data_ref = &data;
        let f = |space: &ExecSpace| {
            space.parallel_reduce(data_ref.len(), 0i64, |i| data_ref[i], |x, y| x + y)
        };
        prop_assert_eq!(f(&a), f(&b));
    }
}
