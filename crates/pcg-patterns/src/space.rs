//! The execution space and dispatch patterns.
//!
//! Mirrors the subset of Kokkos dispatch the paper's prompts exercise:
//! `parallel_for` over `RangePolicy` and `MDRangePolicy`,
//! `parallel_reduce` with a join operator, the two-pass `parallel_scan`,
//! and a CPU-style `TeamPolicy` where each league entry is handled by one
//! pool thread (team vector lanes execute serially, as Kokkos' `Threads`
//! backend commonly configures).

use parking_lot::Mutex;
use pcg_core::{usage, ExecutionModel};
use pcg_shmem::{Pool, Schedule, ThreadCostModel};

/// A Kokkos-style execution space backed by a `pcg-shmem` thread pool.
pub struct ExecSpace {
    pool: Pool,
}

/// Per-team context for [`ExecSpace::parallel_for_teams`].
pub struct TeamCtx {
    league_rank: usize,
    league_size: usize,
}

impl TeamCtx {
    /// This team's index within the league.
    pub fn league_rank(&self) -> usize {
        self.league_rank
    }

    /// Number of teams in the league.
    pub fn league_size(&self) -> usize {
        self.league_size
    }

    /// Serial "vector lane" loop within the team (`TeamThreadRange`
    /// analog with team_size 1).
    pub fn team_for(&self, n: usize, mut f: impl FnMut(usize)) {
        for i in 0..n {
            f(i);
        }
    }

    /// Serial team-level reduction (`parallel_reduce(TeamThreadRange)`).
    pub fn team_reduce<T>(&self, n: usize, identity: T, mut f: impl FnMut(T, usize) -> T) -> T {
        let mut acc = identity;
        for i in 0..n {
            acc = f(acc, i);
        }
        acc
    }
}

impl ExecSpace {
    /// Initialize an execution space with `nthreads` threads (the
    /// `Kokkos::initialize` analog).
    pub fn new(nthreads: usize) -> ExecSpace {
        ExecSpace { pool: Pool::new(nthreads) }
    }

    /// Initialize a timed execution space: dispatches account virtual
    /// time on the underlying pool (see `pcg_shmem::timing`).
    pub fn new_timed(nthreads: usize) -> ExecSpace {
        ExecSpace { pool: Pool::new_timed(nthreads, ThreadCostModel::default()) }
    }

    /// Accumulated virtual time of all dispatches (timed spaces only).
    pub fn virtual_elapsed(&self) -> f64 {
        self.pool.virtual_elapsed()
    }

    /// Reset the virtual clock.
    pub fn reset_virtual_clock(&self) {
        self.pool.reset_virtual_clock()
    }

    /// Re-aim the underlying pool at the calling candidate's usage sink
    /// and cancel token (see [`pcg_shmem::Pool::retarget`]). Called by
    /// the substrate lease layer when a warm space is checked out.
    pub fn retarget(&self) {
        self.pool.retarget()
    }

    /// Concurrency of the space.
    pub fn concurrency(&self) -> usize {
        self.pool.num_threads()
    }

    /// `parallel_for(RangePolicy(0, n), f)`.
    pub fn parallel_for<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        usage::record(ExecutionModel::Kokkos);
        self.pool.parallel_for(0..n, Schedule::Static { chunk: 0 }, f);
    }

    /// `parallel_for(MDRangePolicy<Rank<2>>({0,0},{rows,cols}), f)`.
    /// Iterations are distributed over rows; `f(i, j)` runs for every
    /// pair.
    pub fn parallel_for_2d<F>(&self, rows: usize, cols: usize, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        usage::record(ExecutionModel::Kokkos);
        self.pool.parallel_for(0..rows, Schedule::Static { chunk: 0 }, |i| {
            for j in 0..cols {
                f(i, j);
            }
        });
    }

    /// `parallel_reduce(RangePolicy(0, n), f, join)`: fold `contrib(i)`
    /// into per-thread accumulators, join deterministically in thread
    /// order.
    pub fn parallel_reduce<T, C, J>(&self, n: usize, identity: T, contrib: C, join: J) -> T
    where
        T: Clone + Send + Sync,
        C: Fn(usize) -> T + Sync,
        J: Fn(T, T) -> T + Sync,
    {
        usage::record(ExecutionModel::Kokkos);
        self.pool.parallel_for_reduce(0..n, identity, |acc, i| join(acc, contrib(i)), &join)
    }

    /// `parallel_scan(RangePolicy(0, n), functor)`: the classic two-pass
    /// block scan. `contrib(i)` is element `i`'s contribution, `join`
    /// combines prefixes (must be associative), and `emit(i, inclusive)`
    /// receives the *inclusive* prefix for index `i` in the final pass.
    /// Returns the total (the full-range prefix).
    pub fn parallel_scan<T, C, J, E>(
        &self,
        n: usize,
        identity: T,
        contrib: C,
        join: J,
        emit: E,
    ) -> T
    where
        T: Clone + Send + Sync,
        C: Fn(usize) -> T + Sync,
        J: Fn(T, T) -> T + Sync,
        E: Fn(usize, T) + Sync,
    {
        usage::record(ExecutionModel::Kokkos);
        let nthreads = self.pool.num_threads();
        let per = n.div_ceil(nthreads).max(1);

        // Pass 1: per-thread block totals. Dispatched as a work-sharing
        // loop over block indices so timed pools meter the work.
        let block_totals: Mutex<Vec<Option<T>>> = Mutex::new(vec![None; nthreads]);
        self.pool.parallel_for(0..nthreads, Schedule::Static { chunk: 1 }, |b| {
            let lo = (per * b).min(n);
            let hi = (per * (b + 1)).min(n);
            let mut acc = identity.clone();
            for i in lo..hi {
                acc = join(acc, contrib(i));
            }
            block_totals.lock()[b] = Some(acc);
        });

        // Exclusive scan of block totals (serial: nthreads is tiny).
        let totals: Vec<T> = block_totals
            .into_inner()
            .into_iter()
            .map(|t| t.unwrap_or_else(|| identity.clone()))
            .collect();
        let mut offsets = Vec::with_capacity(nthreads);
        let mut running = identity.clone();
        for t in &totals {
            offsets.push(running.clone());
            running = join(running.clone(), t.clone());
        }
        let grand_total = running;

        // Pass 2: emit inclusive prefixes using block offsets.
        self.pool.parallel_for(0..nthreads, Schedule::Static { chunk: 1 }, |b| {
            let lo = (per * b).min(n);
            let hi = (per * (b + 1)).min(n);
            let mut acc = offsets[b].clone();
            for i in lo..hi {
                acc = join(acc, contrib(i));
                emit(i, acc.clone());
            }
        });

        grand_total
    }

    /// `parallel_for(TeamPolicy(league_size, 1), f)`: each league entry
    /// runs on one pool thread with a [`TeamCtx`].
    pub fn parallel_for_teams<F>(&self, league_size: usize, f: F)
    where
        F: Fn(&TeamCtx) + Sync,
    {
        usage::record(ExecutionModel::Kokkos);
        self.pool.parallel_for(0..league_size, Schedule::Dynamic { chunk: 1 }, |league_rank| {
            f(&TeamCtx { league_rank, league_size });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{View, View2D};

    #[test]
    fn parallel_for_covers_range() {
        let space = ExecSpace::new(4);
        let v: View<i64> = View::new("v", 257);
        let v2 = v.clone();
        space.parallel_for(v.len(), |i| unsafe { v2.set(i, i as i64) });
        assert!(v.to_vec().iter().enumerate().all(|(i, &x)| x == i as i64));
    }

    #[test]
    fn reduce_sum_and_max() {
        let space = ExecSpace::new(3);
        let xs: Vec<f64> = (0..1001).map(|i| i as f64).collect();
        let x = View::from_slice("x", &xs);
        let sum = space.parallel_reduce(x.len(), 0.0, |i| x.get(i), |a, b| a + b);
        assert_eq!(sum, 500_500.0);
        let max = space.parallel_reduce(x.len(), f64::NEG_INFINITY, |i| x.get(i), f64::max);
        assert_eq!(max, 1000.0);
    }

    #[test]
    fn scan_matches_sequential_prefix_sum() {
        let space = ExecSpace::new(4);
        let xs: Vec<i64> = (1..=100).collect();
        let out: View<i64> = View::new("out", xs.len());
        let xs_ref = &xs;
        let out2 = out.clone();
        let total = space.parallel_scan(
            xs.len(),
            0i64,
            |i| xs_ref[i],
            |a, b| a + b,
            |i, inc| unsafe { out2.set(i, inc) },
        );
        assert_eq!(total, 5050);
        let mut want = vec![];
        let mut acc = 0;
        for &x in &xs {
            acc += x;
            want.push(acc);
        }
        assert_eq!(out.to_vec(), want);
    }

    #[test]
    fn scan_empty_range() {
        let space = ExecSpace::new(4);
        let total = space.parallel_scan(0, 0i64, |_| 1, |a, b| a + b, |_, _| {});
        assert_eq!(total, 0);
    }

    #[test]
    fn scan_non_commutative_join_keeps_order() {
        // join = string-ish composition encoded as (first, last) pairs:
        // verifies the scan respects left-to-right order.
        let space = ExecSpace::new(4);
        let n = 64;
        let out: View<i64> = View::new("out", n);
        let out2 = out.clone();
        // Use max-so-far (order-sensitive against wrong offsets).
        let xs: Vec<i64> = (0..n as i64).map(|i| (i * 37) % 19).collect();
        let xs_ref = &xs;
        space.parallel_scan(
            n,
            i64::MIN,
            |i| xs_ref[i],
            |a, b| a.max(b),
            |i, inc| unsafe { out2.set(i, inc) },
        );
        let mut want = vec![];
        let mut m = i64::MIN;
        for &x in &xs {
            m = m.max(x);
            want.push(m);
        }
        assert_eq!(out.to_vec(), want);
    }

    #[test]
    fn md_range_visits_all_pairs() {
        let space = ExecSpace::new(4);
        let m: View2D<i64> = View2D::new("m", 13, 7);
        let m2 = m.clone();
        space.parallel_for_2d(13, 7, |i, j| unsafe { m2.set(i, j, (i * 7 + j) as i64) });
        assert!(m.to_vec().iter().enumerate().all(|(k, &x)| x == k as i64));
    }

    #[test]
    fn teams_cover_league() {
        let space = ExecSpace::new(4);
        let hits: View<i64> = View::new("hits", 33);
        let hits2 = hits.clone();
        space.parallel_for_teams(33, |team| {
            assert_eq!(team.league_size(), 33);
            let partial = team.team_reduce(4, 0i64, |acc, lane| acc + lane as i64);
            unsafe { hits2.set(team.league_rank(), partial) };
        });
        assert!(hits.to_vec().iter().all(|&x| x == 6));
    }

    #[test]
    fn timed_space_accounts_dispatches() {
        let space = ExecSpace::new_timed(4);
        let x: View<f64> = View::new("x", 10_000);
        let x2 = x.clone();
        space.parallel_for(10_000, |i| unsafe { x2.set(i, i as f64) });
        let sum = space.parallel_reduce(10_000, 0.0, |i| x.get(i), |a, b| a + b);
        assert_eq!(sum, (10_000.0f64 * 9_999.0) / 2.0);
        assert!(space.virtual_elapsed() > 0.0);
        space.reset_virtual_clock();
        assert_eq!(space.virtual_elapsed(), 0.0);
    }

    #[test]
    fn team_for_runs_serially_in_order() {
        let space = ExecSpace::new(2);
        let out: View<i64> = View::new("o", 1);
        let out2 = out.clone();
        space.parallel_for_teams(1, |team| {
            let mut last = -1i64;
            team.team_for(10, |lane| {
                assert_eq!(lane as i64, last + 1);
                last = lane as i64;
            });
            unsafe { out2.set(0, last) };
        });
        assert_eq!(out.get(0), 9);
    }
}
