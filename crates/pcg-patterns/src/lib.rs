//! # pcg-patterns
//!
//! Kokkos-analog parallel-pattern substrate for PCGBench-rs.
//!
//! The paper's Kokkos prompts use `Kokkos::View` data structures and the
//! three core dispatch patterns (`parallel_for`, `parallel_reduce`,
//! `parallel_scan`) over range, multidimensional-range, and team policies.
//! This crate reproduces that abstraction level on top of the `pcg-shmem`
//! thread pool (the analog of Kokkos' `Threads` execution space used in
//! the paper's experiments):
//!
//! * [`View`] / [`View2D`] — shared, shallow-copy array containers with
//!   Kokkos access semantics,
//! * [`ScatterView`] — per-thread replicated scatter contributions
//!   (histograms and other irregular updates),
//! * [`ExecSpace`] — the execution space: [`ExecSpace::parallel_for`],
//!   [`ExecSpace::parallel_reduce`], [`ExecSpace::parallel_scan`],
//!   [`ExecSpace::parallel_for_2d`] (MDRange analog), and
//!   [`ExecSpace::parallel_for_teams`] (TeamPolicy analog).
//!
//! Every dispatch records usage via `pcg_core::usage`, letting the
//! harness detect candidates that never touch the pattern API.
//!
//! ```
//! use pcg_patterns::prelude::*;
//!
//! let space = ExecSpace::new(4);
//! let x = View::from_slice("x", &[1.0, 2.0, 3.0, 4.0]);
//! let sum = space.parallel_reduce(x.len(), 0.0, |i| x.get(i), |a, b| a + b);
//! assert_eq!(sum, 10.0);
//! ```

mod scatter;
mod space;
mod view;

pub use scatter::ScatterView;
pub use space::{ExecSpace, TeamCtx};
pub use view::{View, View2D};

/// Convenient glob import for candidate implementations.
pub mod prelude {
    pub use crate::{ExecSpace, ScatterView, TeamCtx, View, View2D};
}
