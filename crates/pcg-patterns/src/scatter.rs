//! `ScatterView` analog: contention-free irregular updates.
//!
//! Kokkos' `ScatterView` gives each thread a private replica of an output
//! array; contributions accumulate without atomics and are combined in a
//! final `contribute` step. This is the canonical pattern for parallel
//! histograms, which PCGBench tests directly.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-thread replicated scatter-add target.
pub struct ScatterView<T> {
    replicas: Vec<Mutex<Vec<T>>>,
    len: usize,
    next_slot: AtomicUsize,
}

/// A thread's access handle into a [`ScatterView`].
pub struct ScatterAccess<'a, T> {
    replica: parking_lot::MutexGuard<'a, Vec<T>>,
}

impl<T: Copy + Default + std::ops::AddAssign> ScatterView<T> {
    /// Create a scatter target of length `len` with `replicas` private
    /// copies (typically the thread count).
    pub fn new(len: usize, replicas: usize) -> ScatterView<T> {
        assert!(replicas > 0, "need at least one replica");
        ScatterView {
            replicas: (0..replicas).map(|_| Mutex::new(vec![T::default(); len])).collect(),
            len,
            next_slot: AtomicUsize::new(0),
        }
    }

    /// Target length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the target is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Acquire a replica for the calling thread. Replicas are handed out
    /// round-robin; under one acquisition per team member per region this
    /// is contention-free.
    pub fn access(&self) -> ScatterAccess<'_, T> {
        let start = self.next_slot.fetch_add(1, Ordering::Relaxed) % self.replicas.len();
        // Try each replica starting from our round-robin slot; fall back
        // to blocking on ours if all are busy.
        for k in 0..self.replicas.len() {
            let idx = (start + k) % self.replicas.len();
            if let Some(guard) = self.replicas[idx].try_lock() {
                return ScatterAccess { replica: guard };
            }
        }
        ScatterAccess { replica: self.replicas[start].lock() }
    }

    /// Combine all replicas into `out` (adds on top of existing values).
    pub fn contribute(&self, out: &mut [T]) {
        assert_eq!(out.len(), self.len, "contribute length mismatch");
        for replica in &self.replicas {
            let r = replica.lock();
            for (o, &v) in out.iter_mut().zip(r.iter()) {
                *o += v;
            }
        }
    }

    /// Reset all replicas to default.
    pub fn reset(&self) {
        for replica in &self.replicas {
            for v in replica.lock().iter_mut() {
                *v = T::default();
            }
        }
    }
}

impl<T: Copy + std::ops::AddAssign> ScatterAccess<'_, T> {
    /// Accumulate `value` into slot `i` of this thread's replica.
    pub fn add(&mut self, i: usize, value: T) {
        self.replica[i] += value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecSpace;

    #[test]
    fn concurrent_histogram_sums_correctly() {
        let space = ExecSpace::new(4);
        let scatter: ScatterView<i64> = ScatterView::new(10, 4);
        let data: Vec<usize> = (0..10_000).map(|i| i % 10).collect();
        let data_ref = &data;
        let scatter_ref = &scatter;
        space.parallel_for_teams(16, |team| {
            let mut access = scatter_ref.access();
            let chunk = data_ref.len() / 16;
            let lo = team.league_rank() * chunk;
            let hi = if team.league_rank() == 15 { data_ref.len() } else { lo + chunk };
            for &bin in &data_ref[lo..hi] {
                access.add(bin, 1);
            }
        });
        let mut out = vec![0i64; 10];
        scatter.contribute(&mut out);
        assert!(out.iter().all(|&c| c == 1000), "{out:?}");
    }

    #[test]
    fn contribute_adds_to_existing() {
        let s: ScatterView<i64> = ScatterView::new(3, 2);
        s.access().add(1, 5);
        let mut out = vec![10, 10, 10];
        s.contribute(&mut out);
        assert_eq!(out, vec![10, 15, 10]);
    }

    #[test]
    fn reset_clears() {
        let s: ScatterView<f64> = ScatterView::new(2, 2);
        s.access().add(0, 1.5);
        s.reset();
        let mut out = vec![0.0; 2];
        s.contribute(&mut out);
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn contribute_checks_len() {
        let s: ScatterView<i64> = ScatterView::new(3, 1);
        let mut out = vec![0i64; 2];
        s.contribute(&mut out);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let _: ScatterView<i64> = ScatterView::new(3, 0);
    }
}
