//! Kokkos-style `View` containers.
//!
//! A Kokkos `View` is a reference-counted, shallow-copy array handle that
//! kernels read and write concurrently under the program's race-freedom
//! discipline. [`View`] mirrors that: `Clone` aliases the same storage,
//! reads are safe, and concurrent writes go through an `unsafe` method
//! whose contract is the usual "distinct iterations touch distinct
//! indices" rule every Kokkos kernel already obeys.

use std::cell::UnsafeCell;
use std::sync::Arc;

/// A 1-D shared array handle (Kokkos `View<T*>` analog).
pub struct View<T> {
    label: Arc<str>,
    data: Arc<[UnsafeCell<T>]>,
}

// SAFETY: concurrent access discipline is the caller's responsibility at
// the `unsafe` write methods, exactly as in `pcg_shmem::UnsafeSlice`.
unsafe impl<T: Send + Sync> Sync for View<T> {}
unsafe impl<T: Send + Sync> Send for View<T> {}

impl<T> Clone for View<T> {
    /// Shallow copy: both handles alias the same storage (Kokkos
    /// reference semantics).
    fn clone(&self) -> View<T> {
        View { label: Arc::clone(&self.label), data: Arc::clone(&self.data) }
    }
}

impl<T: Copy + Default> View<T> {
    /// Allocate a zero/default-initialized view of length `len`.
    pub fn new(label: &str, len: usize) -> View<T> {
        View {
            label: label.into(),
            data: (0..len).map(|_| UnsafeCell::new(T::default())).collect(),
        }
    }
}

impl<T: Copy> View<T> {
    /// Allocate a view initialized from `src`.
    pub fn from_slice(label: &str, src: &[T]) -> View<T> {
        View {
            label: label.into(),
            data: src.iter().map(|&x| UnsafeCell::new(x)).collect(),
        }
    }

    /// The view's debugging label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of elements (Kokkos `extent(0)`).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read element `i`.
    ///
    /// Safe under the Kokkos discipline that no kernel writes `i`
    /// concurrently; violating that is a logic error checked by the
    /// harness's output validation rather than UB-freedom here.
    pub fn get(&self, i: usize) -> T {
        unsafe { *self.data[i].get() }
    }

    /// Write element `i`.
    ///
    /// # Safety
    /// No other thread may read or write index `i` concurrently.
    pub unsafe fn set(&self, i: usize, value: T) {
        *self.data[i].get() = value;
    }

    /// Copy the contents out to a `Vec` (host mirror analog).
    pub fn to_vec(&self) -> Vec<T> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Overwrite the contents from a slice of equal length.
    pub fn copy_from(&self, src: &[T]) {
        assert_eq!(src.len(), self.len(), "copy_from length mismatch");
        for (i, &x) in src.iter().enumerate() {
            unsafe { self.set(i, x) };
        }
    }
}

/// A 2-D row-major shared array handle (Kokkos `View<T**>` analog).
pub struct View2D<T> {
    inner: View<T>,
    rows: usize,
    cols: usize,
}

impl<T> Clone for View2D<T> {
    fn clone(&self) -> View2D<T> {
        View2D { inner: self.inner.clone(), rows: self.rows, cols: self.cols }
    }
}

impl<T: Copy + Default> View2D<T> {
    /// Allocate a zero/default-initialized `rows x cols` view.
    pub fn new(label: &str, rows: usize, cols: usize) -> View2D<T> {
        View2D { inner: View::new(label, rows * cols), rows, cols }
    }
}

impl<T: Copy> View2D<T> {
    /// Allocate from a row-major slice of length `rows * cols`.
    pub fn from_slice(label: &str, rows: usize, cols: usize, src: &[T]) -> View2D<T> {
        assert_eq!(src.len(), rows * cols, "2D view shape mismatch");
        View2D { inner: View::from_slice(label, src), rows, cols }
    }

    /// Extent of dimension 0.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Extent of dimension 1.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read element `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(i < self.rows && j < self.cols, "2D index out of bounds");
        self.inner.get(i * self.cols + j)
    }

    /// Write element `(i, j)`.
    ///
    /// # Safety
    /// No other thread may read or write `(i, j)` concurrently.
    pub unsafe fn set(&self, i: usize, j: usize, value: T) {
        assert!(i < self.rows && j < self.cols, "2D index out of bounds");
        self.inner.set(i * self.cols + j, value)
    }

    /// Copy out row-major contents.
    pub fn to_vec(&self) -> Vec<T> {
        self.inner.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_aliases_storage() {
        let a: View<f64> = View::new("a", 4);
        let b = a.clone();
        unsafe { a.set(2, 9.0) };
        assert_eq!(b.get(2), 9.0);
        assert_eq!(b.label(), "a");
    }

    #[test]
    fn from_slice_and_to_vec_roundtrip() {
        let v = View::from_slice("v", &[1, 2, 3]);
        assert_eq!(v.to_vec(), vec![1, 2, 3]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
    }

    #[test]
    fn copy_from_overwrites() {
        let v: View<i64> = View::new("v", 3);
        v.copy_from(&[7, 8, 9]);
        assert_eq!(v.to_vec(), vec![7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn copy_from_checks_len() {
        let v: View<i64> = View::new("v", 3);
        v.copy_from(&[1, 2]);
    }

    #[test]
    fn view2d_indexing() {
        let m = View2D::from_slice("m", 2, 3, &[1, 2, 3, 4, 5, 6]);
        assert_eq!(m.get(0, 0), 1);
        assert_eq!(m.get(1, 2), 6);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        unsafe { m.set(1, 0, 40) };
        assert_eq!(m.to_vec(), vec![1, 2, 3, 40, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn view2d_bounds_checked() {
        let m: View2D<f64> = View2D::new("m", 2, 2);
        let _ = m.get(2, 0);
    }

    #[test]
    fn concurrent_disjoint_writes() {
        let v: View<usize> = View::new("v", 1000);
        std::thread::scope(|s| {
            for t in 0..4 {
                let v = v.clone();
                s.spawn(move || {
                    for i in (t..1000).step_by(4) {
                        unsafe { v.set(i, i) };
                    }
                });
            }
        });
        assert!(v.to_vec().iter().enumerate().all(|(i, &x)| x == i));
    }
}
