//! # pcg-metrics
//!
//! Estimators for the paper's evaluation metrics (§6):
//!
//! * [`pass_at_k`] — the unbiased Codex estimator (Eq. 4); `build@k` is
//!   the same estimator with "builds" as the success count,
//! * [`expected_best_ratio`] — the order-statistics estimator of the
//!   expected best speedup among `k` draws (Eq. 5),
//! * [`speedup_n_at_k`] / [`efficiency_n_at_k`] — the benchmark-level
//!   averages (Eqs. 6 and 7).
//!
//! All estimators are numerically stable (ratio recurrences, no raw
//! factorials) and validated against brute-force enumeration in tests.

mod aggregate;

pub use aggregate::{MetricSummary, TaskSamples};

/// Unbiased `pass@k` estimator (Eq. 4): the probability that at least
/// one of `k` uniformly drawn samples out of `n` (with `c` correct) is
/// correct, computed as `1 - C(n-c, k)/C(n, k)` via a stable product.
///
/// Panics if `k == 0` or `k > n`.
pub fn pass_at_k(n: usize, c: usize, k: usize) -> f64 {
    assert!(k >= 1, "pass@k needs k >= 1");
    assert!(k <= n, "pass@k needs k <= n (got k={k}, n={n})");
    assert!(c <= n, "cannot have more correct than total samples");
    if c == 0 {
        return 0.0;
    }
    if n - c < k {
        // Fewer incorrect samples than draws: some draw is correct.
        return 1.0;
    }
    // prod_{i=n-c+1..=n} (i - k) / i
    let mut fail = 1.0f64;
    for i in (n - c + 1)..=n {
        fail *= (i - k) as f64 / i as f64;
    }
    1.0 - fail
}

/// Expected best value among `k` uniform draws without replacement from
/// `values` (Eq. 5): `sum_j C(j-1, k-1)/C(N, k) * v_(j)` over the
/// ascending order statistics `v_(j)`.
///
/// Returns 0 for an empty slice; panics if `k == 0` or `k > N`.
pub fn expected_best_ratio(values: &[f64], k: usize) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let n = values.len();
    assert!(k >= 1, "expected_best_ratio needs k >= 1");
    assert!(k <= n, "expected_best_ratio needs k <= N (got k={k}, N={n})");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("ratios must not be NaN"));
    // w_j = C(j-1, k-1) / C(N, k) for j = k..=N (1-based); w_k = k/ C(N,k)*...
    // Start from w_k = C(k-1, k-1)/C(N, k) = 1/C(N, k) and use the
    // recurrence C(j, k-1) = C(j-1, k-1) * j / (j - k + 1).
    let mut inv_cnk = 1.0f64; // 1 / C(N, k) built as a product
    for i in 0..k {
        inv_cnk *= (i + 1) as f64 / (n - i) as f64;
    }
    let mut weight = inv_cnk; // w_k
    let mut acc = 0.0;
    for j in k..=n {
        acc += weight * sorted[j - 1];
        // advance C(j-1, k-1) -> C(j, k-1)
        weight *= j as f64 / (j - k + 1) as f64;
    }
    acc
}

/// `speedup_n@k` (Eq. 6): the average over prompts of the expected best
/// baseline-over-candidate runtime ratio among `k` draws. Each inner
/// slice holds one prompt's per-sample ratios (`T*/T_j`, with incorrect
/// samples contributing 0).
pub fn speedup_n_at_k(per_prompt_ratios: &[Vec<f64>], k: usize) -> f64 {
    if per_prompt_ratios.is_empty() {
        return 0.0;
    }
    let total: f64 =
        per_prompt_ratios.iter().map(|ratios| expected_best_ratio(ratios, k)).sum();
    total / per_prompt_ratios.len() as f64
}

/// `efficiency_n@k` (Eq. 7): [`speedup_n_at_k`] divided by the resource
/// count `n`.
pub fn efficiency_n_at_k(per_prompt_ratios: &[Vec<f64>], k: usize, n_resources: u32) -> f64 {
    speedup_n_at_k(per_prompt_ratios, k) / f64::from(n_resources.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Brute force over all k-subsets for validation.
    fn brute_pass_at_k(n: usize, c: usize, k: usize) -> f64 {
        let mut correct_draws = 0usize;
        let mut total = 0usize;
        let items: Vec<bool> = (0..n).map(|i| i < c).collect();
        fn subsets(
            items: &[bool],
            k: usize,
            start: usize,
            any: bool,
            total: &mut usize,
            hit: &mut usize,
        ) {
            if k == 0 {
                *total += 1;
                if any {
                    *hit += 1;
                }
                return;
            }
            for i in start..items.len() {
                subsets(items, k - 1, i + 1, any || items[i], total, hit);
            }
        }
        subsets(&items, k, 0, false, &mut total, &mut correct_draws);
        correct_draws as f64 / total as f64
    }

    fn brute_expected_best(values: &[f64], k: usize) -> f64 {
        fn subsets(values: &[f64], k: usize, start: usize, best: f64, acc: &mut (f64, usize)) {
            if k == 0 {
                acc.0 += best;
                acc.1 += 1;
                return;
            }
            for i in start..values.len() {
                subsets(values, k - 1, i + 1, best.max(values[i]), acc);
            }
        }
        let mut acc = (0.0, 0usize);
        subsets(values, k, 0, f64::NEG_INFINITY, &mut acc);
        acc.0 / acc.1 as f64
    }

    #[test]
    fn pass_at_k_matches_brute_force() {
        for n in 1..=8 {
            for c in 0..=n {
                for k in 1..=n {
                    let est = pass_at_k(n, c, k);
                    let brute = brute_pass_at_k(n, c, k);
                    assert!((est - brute).abs() < 1e-12, "n={n} c={c} k={k}: {est} vs {brute}");
                }
            }
        }
    }

    #[test]
    fn pass_at_k_edges() {
        assert_eq!(pass_at_k(20, 0, 1), 0.0);
        assert_eq!(pass_at_k(20, 20, 1), 1.0);
        assert!((pass_at_k(20, 10, 1) - 0.5).abs() < 1e-12);
        assert_eq!(pass_at_k(10, 5, 10), 1.0);
    }

    #[test]
    #[should_panic(expected = "k <= n")]
    fn pass_at_k_rejects_k_above_n() {
        let _ = pass_at_k(5, 2, 6);
    }

    #[test]
    fn expected_best_matches_brute_force() {
        let values = [0.4, 2.0, 1.1, 0.0, 3.7, 0.9];
        for k in 1..=values.len() {
            let est = expected_best_ratio(&values, k);
            let brute = brute_expected_best(&values, k);
            assert!((est - brute).abs() < 1e-10, "k={k}: {est} vs {brute}");
        }
    }

    #[test]
    fn expected_best_k_equals_n_is_max() {
        let values = [0.5, 4.0, 2.0];
        assert!((expected_best_ratio(&values, 3) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn expected_best_k1_is_mean() {
        let values = [1.0, 2.0, 6.0];
        assert!((expected_best_ratio(&values, 1) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_averages_prompts() {
        let prompts = vec![vec![2.0, 2.0], vec![0.0, 0.0]];
        assert!((speedup_n_at_k(&prompts, 1) - 1.0).abs() < 1e-12);
        assert!((efficiency_n_at_k(&prompts, 1, 4) - 0.25).abs() < 1e-12);
        assert_eq!(speedup_n_at_k(&[], 1), 0.0);
    }

    proptest! {
        #[test]
        fn pass_at_k_monotone_in_k(n in 2usize..40, c in 0usize..40) {
            let c = c.min(n);
            let mut last = 0.0;
            for k in 1..=n {
                let v = pass_at_k(n, c, k);
                prop_assert!(v >= last - 1e-12);
                prop_assert!((0.0..=1.0).contains(&v));
                last = v;
            }
        }

        #[test]
        fn pass_at_k_monotone_in_c(n in 2usize..40, k in 1usize..10) {
            let k = k.min(n);
            let mut last = 0.0;
            for c in 0..=n {
                let v = pass_at_k(n, c, k);
                prop_assert!(v >= last - 1e-12);
                last = v;
            }
        }

        #[test]
        fn expected_best_monotone_in_k(values in proptest::collection::vec(0.0f64..100.0, 1..20)) {
            let mut last = f64::NEG_INFINITY;
            for k in 1..=values.len() {
                let v = expected_best_ratio(&values, k);
                prop_assert!(v >= last - 1e-9);
                last = v;
            }
            // k = N recovers the maximum.
            let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((last - max).abs() < 1e-9);
        }

        #[test]
        fn expected_best_bounded_by_extremes(values in proptest::collection::vec(0.0f64..10.0, 1..15), k in 1usize..15) {
            let k = k.min(values.len());
            let v = expected_best_ratio(&values, k);
            let min = values.iter().copied().fold(f64::INFINITY, f64::min);
            let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
        }

        #[test]
        fn pass_at_1_is_the_empirical_rate(n in 1usize..200, c in 0usize..200) {
            let c = c.min(n);
            let v = pass_at_k(n, c, 1);
            prop_assert!((v - c as f64 / n as f64).abs() < 1e-12);
        }

        #[test]
        fn pass_at_n_is_an_indicator(n in 1usize..200, c in 0usize..200) {
            // Drawing all n samples finds a correct one iff any exists.
            let c = c.min(n);
            let v = pass_at_k(n, c, n);
            prop_assert_eq!(v, if c > 0 { 1.0 } else { 0.0 });
        }

        #[test]
        fn efficiency_is_speedup_over_resources(
            a in proptest::collection::vec(0.0f64..50.0, 1..12),
            b in proptest::collection::vec(0.0f64..50.0, 1..12),
            k in 1usize..6,
            n in 1u32..128,
        ) {
            let k = k.min(a.len()).min(b.len());
            let prompts = vec![a, b];
            let s = speedup_n_at_k(&prompts, k);
            let e = efficiency_n_at_k(&prompts, k, n);
            prop_assert!((e - s / f64::from(n)).abs() <= 1e-12 * s.abs().max(1.0));
            prop_assert!(s >= 0.0 && e >= 0.0);
        }
    }
}
