//! Benchmark-level aggregation of per-sample outcomes.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The per-sample outcomes for one task (one prompt).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TaskSamples {
    /// Whether each sample built.
    pub built: Vec<bool>,
    /// Whether each sample was fully correct (built, ran, validated,
    /// used the required parallel API).
    pub correct: Vec<bool>,
    /// Each sample's `T*/T` ratio at the headline resource count
    /// (0 for incorrect samples).
    pub ratio: Vec<f64>,
}

impl TaskSamples {
    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.correct.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.correct.is_empty()
    }

    /// Count of correct samples.
    pub fn num_correct(&self) -> usize {
        self.correct.iter().filter(|&&c| c).count()
    }

    /// Count of building samples.
    pub fn num_built(&self) -> usize {
        self.built.iter().filter(|&&b| b).count()
    }
}

/// Aggregated metrics over a set of tasks.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Mean `pass@k`.
    pub pass_at_k: f64,
    /// Mean `build@k`.
    pub build_at_k: f64,
    /// Mean `speedup_n@k`.
    pub speedup: f64,
    /// Mean `efficiency_n@k`.
    pub efficiency: f64,
    /// Number of tasks aggregated.
    pub tasks: usize,
}

impl MetricSummary {
    /// Aggregate `tasks` at draw count `k` and resource count `n`.
    pub fn compute(tasks: &[&TaskSamples], k: usize, n_resources: u32) -> MetricSummary {
        if tasks.is_empty() {
            return MetricSummary::default();
        }
        let mut pass = 0.0;
        let mut build = 0.0;
        let mut ratios: Vec<Vec<f64>> = Vec::with_capacity(tasks.len());
        for t in tasks {
            let n = t.len().max(1);
            let k_eff = k.min(n);
            pass += crate::pass_at_k(n, t.num_correct(), k_eff);
            build += crate::pass_at_k(n, t.num_built(), k_eff);
            ratios.push(t.ratio.clone());
        }
        let k_perf = k.min(ratios.iter().map(|r| r.len()).min().unwrap_or(1)).max(1);
        let speedup = crate::speedup_n_at_k(&ratios, k_perf);
        MetricSummary {
            pass_at_k: pass / tasks.len() as f64,
            build_at_k: build / tasks.len() as f64,
            speedup,
            efficiency: speedup / f64::from(n_resources.max(1)),
            tasks: tasks.len(),
        }
    }

    /// Aggregate labeled tasks into one summary per distinct key, in
    /// key order. The key is whatever axis the caller groups by — the
    /// harness uses it to roll model rows up per prompt variant — and
    /// grouping here (rather than in each consumer) keeps "same key ⇒
    /// same bin" in one place.
    pub fn compute_grouped<K: Ord + Clone>(
        tasks: &[(K, &TaskSamples)],
        k: usize,
        n_resources: u32,
    ) -> Vec<(K, MetricSummary)> {
        let mut groups: BTreeMap<K, Vec<&TaskSamples>> = BTreeMap::new();
        for (key, t) in tasks {
            groups.entry(key.clone()).or_default().push(t);
        }
        groups
            .into_iter()
            .map(|(key, ts)| {
                let summary = MetricSummary::compute(&ts, k, n_resources);
                (key, summary)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(correct: &[bool], ratios: &[f64]) -> TaskSamples {
        TaskSamples {
            built: correct.iter().map(|_| true).collect(),
            correct: correct.to_vec(),
            ratio: ratios.to_vec(),
        }
    }

    #[test]
    fn summary_over_two_tasks() {
        let a = task(&[true, false], &[2.0, 0.0]);
        let b = task(&[false, false], &[0.0, 0.0]);
        let s = MetricSummary::compute(&[&a, &b], 1, 4);
        assert!((s.pass_at_k - 0.25).abs() < 1e-12);
        assert!((s.build_at_k - 1.0).abs() < 1e-12);
        assert!((s.speedup - 0.5).abs() < 1e-12);
        assert!((s.efficiency - 0.125).abs() < 1e-12);
        assert_eq!(s.tasks, 2);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = MetricSummary::compute(&[], 1, 32);
        assert_eq!(s.tasks, 0);
        assert_eq!(s.pass_at_k, 0.0);
    }

    #[test]
    fn grouped_summaries_bin_by_key_in_key_order() {
        let a = task(&[true, true], &[2.0, 2.0]);
        let b = task(&[false, false], &[0.0, 0.0]);
        let c = task(&[true, false], &[4.0, 0.0]);
        let grouped = MetricSummary::compute_grouped(
            &[("rag", &a), ("naive", &b), ("rag", &c)],
            1,
            4,
        );
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].0, "naive");
        assert_eq!(grouped[1].0, "rag");
        assert_eq!(grouped[0].1.tasks, 1);
        assert_eq!(grouped[1].1.tasks, 2);
        assert_eq!(grouped[0].1.pass_at_k, 0.0);
        assert!((grouped[1].1.pass_at_k - 0.75).abs() < 1e-12);
        // Each group must match a direct compute over its members.
        let direct = MetricSummary::compute(&[&a, &c], 1, 4);
        assert!((grouped[1].1.speedup - direct.speedup).abs() < 1e-12);
    }

    #[test]
    fn counts() {
        let t = task(&[true, true, false], &[1.0, 1.0, 0.0]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.num_correct(), 2);
        assert_eq!(t.num_built(), 3);
        assert!(!t.is_empty());
    }
}
