//! Property tests: work-sharing results are schedule- and
//! thread-count-independent and match serial oracles.

use pcg_shmem::{Pool, Schedule, ThreadCostModel, UnsafeSlice};
use proptest::prelude::*;

fn schedules() -> Vec<Schedule> {
    vec![
        Schedule::Static { chunk: 0 },
        Schedule::Static { chunk: 3 },
        Schedule::Dynamic { chunk: 5 },
        Schedule::Guided { min_chunk: 2 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_for_writes_each_index_once(
        n in 0usize..2000,
        threads in 1usize..9,
    ) {
        let pool = Pool::new(threads);
        for sched in schedules() {
            let mut hits = vec![0u8; n];
            {
                let slice = UnsafeSlice::new(&mut hits);
                pool.parallel_for(0..n, sched, |i| unsafe {
                    slice.write(i, slice.read(i) + 1);
                });
            }
            prop_assert!(hits.iter().all(|&h| h == 1), "{sched:?} n={n} threads={threads}");
        }
    }

    #[test]
    fn reduce_matches_serial_for_any_shape(
        data in proptest::collection::vec(-100i64..100, 0..1500),
        threads in 1usize..9,
    ) {
        let pool = Pool::new(threads);
        let want: i64 = data.iter().sum();
        let got = pool.parallel_for_reduce(0..data.len(), 0i64, |a, i| a + data[i], |a, b| a + b);
        prop_assert_eq!(got, want);

        let want_max = data.iter().copied().max().unwrap_or(i64::MIN);
        let got_max =
            pool.parallel_for_reduce(0..data.len(), i64::MIN, |a, i| a.max(data[i]), i64::max);
        prop_assert_eq!(got_max, want_max);
    }

    #[test]
    fn chunks_mut_partitions_exactly(
        n in 0usize..2000,
        threads in 1usize..9,
    ) {
        let pool = Pool::new(threads);
        let mut data = vec![usize::MAX; n];
        pool.parallel_chunks_mut(&mut data, |_tid, start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = start + k;
            }
        });
        prop_assert!(data.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn timed_pool_matches_untimed_results(
        data in proptest::collection::vec(-10f64..10.0, 1..800),
        threads in 1usize..7,
    ) {
        let plain = Pool::new(threads);
        let timed = Pool::new_timed(threads, ThreadCostModel::default());
        let sum = |pool: &Pool| {
            pool.parallel_for_reduce(0..data.len(), 0.0f64, |a, i| a + data[i], |a, b| a + b)
        };
        // Identical chunking => identical fold order => identical floats.
        prop_assert_eq!(sum(&plain), sum(&timed));
        prop_assert!(timed.virtual_elapsed() > 0.0);
        prop_assert_eq!(plain.virtual_elapsed(), 0.0);
    }

    #[test]
    fn virtual_time_accumulates_monotonically(regions in 1usize..6) {
        let pool = Pool::new_timed(4, ThreadCostModel::default());
        let mut last = 0.0;
        for _ in 0..regions {
            pool.parallel_for(0..500, Schedule::Static { chunk: 0 }, |i| {
                std::hint::black_box(i * i);
            });
            let now = pool.virtual_elapsed();
            prop_assert!(now > last);
            last = now;
        }
    }
}
