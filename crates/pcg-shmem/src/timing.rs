//! Virtual-time accounting for work-sharing loops.
//!
//! A [`crate::Pool`] created with [`crate::Pool::new_timed`] serializes
//! loop-chunk execution behind a gate and wall-times each chunk. Because
//! only one chunk runs at a time, the measurement reflects the chunk's
//! true work even on a single-core host (no oversubscription stalls are
//! charged). Each work-sharing region then contributes
//!
//! ```text
//! region_time = max over threads of (sum of chunk times + dispatch)
//!             + fork_join(n)
//! ```
//!
//! to the pool's virtual clock — the standard critical-path model of a
//! fork-join loop. Imbalance (one thread got more measured work), serial
//! fractions, and per-chunk dispatch overheads all degrade the modeled
//! scaling exactly as they do on real hardware.

use crate::atomicf64::AtomicF64;
use parking_lot::Mutex;

/// Overhead parameters of the fork-join model.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadCostModel {
    /// Fixed cost of forking/joining a region, seconds.
    pub fork_join_base: f64,
    /// Additional fork/join cost per log2(team size), seconds.
    pub fork_join_per_level: f64,
    /// Cost charged per dispatched chunk (scheduler bookkeeping), seconds.
    pub chunk_dispatch: f64,
}

impl Default for ThreadCostModel {
    fn default() -> ThreadCostModel {
        // Calibrated to typical OpenMP runtime overheads on a
        // server-class x86 core (EPYC 7763-like): ~1-2 us per region.
        ThreadCostModel {
            fork_join_base: 1.2e-6,
            fork_join_per_level: 0.4e-6,
            chunk_dispatch: 1.5e-7,
        }
    }
}

impl ThreadCostModel {
    /// Fork/join overhead for a team of `n`.
    pub fn fork_join(&self, n: usize) -> f64 {
        self.fork_join_base + self.fork_join_per_level * (n.max(1) as f64).log2()
    }
}

/// Per-pool timed-mode state.
pub(crate) struct TimedState {
    /// Serializes chunk execution so chunk wall times equal chunk work.
    pub gate: Mutex<()>,
    pub model: ThreadCostModel,
    /// Accumulated virtual time across regions.
    pub clock: AtomicF64,
}

impl TimedState {
    pub fn new(model: ThreadCostModel) -> TimedState {
        TimedState { gate: Mutex::new(()), model, clock: AtomicF64::new(0.0) }
    }

    /// Fold one region's per-thread work vector into the clock (the
    /// fork/join overhead itself is charged by `Pool::parallel`, which
    /// every region passes through exactly once).
    pub fn charge_region(&self, per_thread: &[f64]) {
        let critical_path = per_thread.iter().copied().fold(0.0f64, f64::max);
        self.clock.fetch_add(critical_path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_join_grows_with_team() {
        let m = ThreadCostModel::default();
        assert!(m.fork_join(32) > m.fork_join(2));
        assert!(m.fork_join(1) >= m.fork_join_base);
    }

    #[test]
    fn charge_uses_critical_path() {
        let st = TimedState::new(ThreadCostModel {
            fork_join_base: 0.0,
            fork_join_per_level: 0.0,
            chunk_dispatch: 0.0,
        });
        st.charge_region(&[1.0, 3.0, 2.0]);
        assert_eq!(st.clock.load(), 3.0);
        st.charge_region(&[0.5]);
        assert_eq!(st.clock.load(), 3.5);
    }
}
