//! Loop iteration scheduling policies, mirroring OpenMP's `schedule` clause.

use std::sync::atomic::{AtomicUsize, Ordering};

/// How a [`crate::Pool::parallel_for`] distributes iterations to threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Contiguous blocks assigned round-robin by chunk; `chunk = 0` means
    /// one block per thread (OpenMP's default `schedule(static)`).
    Static { chunk: usize },
    /// Threads grab fixed-size chunks from a shared counter
    /// (`schedule(dynamic, chunk)`); `chunk = 0` means chunk size 1.
    Dynamic { chunk: usize },
    /// Chunk size decays with remaining work (`schedule(guided)`), with a
    /// minimum chunk of `min_chunk` (0 means 1).
    Guided { min_chunk: usize },
}

impl Default for Schedule {
    fn default() -> Schedule {
        Schedule::Static { chunk: 0 }
    }
}

/// Shared per-loop state that threads pull chunks from.
pub(crate) struct LoopState {
    pub start: usize,
    pub end: usize,
    pub schedule: Schedule,
    pub nthreads: usize,
    next: AtomicUsize,
}

impl LoopState {
    pub fn new(start: usize, end: usize, schedule: Schedule, nthreads: usize) -> LoopState {
        LoopState { start, end, schedule, nthreads, next: AtomicUsize::new(start) }
    }

    /// The next chunk `[lo, hi)` for thread `tid`, or `None` when the loop
    /// is exhausted for that thread.
    pub fn next_chunk(&self, tid: usize, cursor: &mut StaticCursor) -> Option<(usize, usize)> {
        let n = self.end - self.start;
        if n == 0 {
            return None;
        }
        match self.schedule {
            Schedule::Static { chunk } => {
                let chunk = if chunk == 0 {
                    // One contiguous block per thread.
                    let per = n.div_ceil(self.nthreads);
                    let lo = self.start + per.saturating_mul(tid).min(n);
                    let hi = self.start + per.saturating_mul(tid + 1).min(n);
                    if cursor.block_done || lo >= hi {
                        return None;
                    }
                    cursor.block_done = true;
                    return Some((lo, hi));
                } else {
                    chunk
                };
                // Round-robin chunks: thread t takes chunks t, t+T, t+2T, ...
                let stride = chunk * self.nthreads;
                let k = cursor.round;
                let lo = self.start + tid * chunk + k * stride;
                if lo >= self.end {
                    return None;
                }
                cursor.round += 1;
                Some((lo, (lo + chunk).min(self.end)))
            }
            Schedule::Dynamic { chunk } => {
                let chunk = chunk.max(1);
                let lo = self.next.fetch_add(chunk, Ordering::Relaxed);
                if lo >= self.end {
                    return None;
                }
                Some((lo, (lo + chunk).min(self.end)))
            }
            Schedule::Guided { min_chunk } => {
                let min_chunk = min_chunk.max(1);
                loop {
                    let lo = self.next.load(Ordering::Relaxed);
                    if lo >= self.end {
                        return None;
                    }
                    let remaining = self.end - lo;
                    let chunk = (remaining / (2 * self.nthreads)).max(min_chunk).min(remaining);
                    if self
                        .next
                        .compare_exchange_weak(lo, lo + chunk, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        return Some((lo, lo + chunk));
                    }
                }
            }
        }
    }
}

/// Per-thread cursor for static scheduling (no shared state needed).
#[derive(Default)]
pub(crate) struct StaticCursor {
    block_done: bool,
    round: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_all(state: &LoopState) -> Vec<usize> {
        let mut seen = vec![];
        for tid in 0..state.nthreads {
            let mut cur = StaticCursor::default();
            while let Some((lo, hi)) = state.next_chunk(tid, &mut cur) {
                seen.extend(lo..hi);
            }
        }
        seen.sort_unstable();
        seen
    }

    #[test]
    fn static_default_covers_range_once() {
        let s = LoopState::new(3, 103, Schedule::Static { chunk: 0 }, 4);
        assert_eq!(collect_all(&s), (3..103).collect::<Vec<_>>());
    }

    #[test]
    fn static_chunked_covers_range_once() {
        for chunk in [1, 3, 7, 200] {
            let s = LoopState::new(0, 100, Schedule::Static { chunk }, 3);
            assert_eq!(collect_all(&s), (0..100).collect::<Vec<_>>(), "chunk={chunk}");
        }
    }

    #[test]
    fn dynamic_covers_range_once() {
        for chunk in [0, 1, 8, 1000] {
            let s = LoopState::new(5, 205, Schedule::Dynamic { chunk }, 4);
            assert_eq!(collect_all(&s), (5..205).collect::<Vec<_>>(), "chunk={chunk}");
        }
    }

    #[test]
    fn guided_covers_range_once() {
        for min_chunk in [0, 1, 4] {
            let s = LoopState::new(0, 500, Schedule::Guided { min_chunk }, 4);
            assert_eq!(collect_all(&s), (0..500).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_range_yields_nothing() {
        for sched in [
            Schedule::Static { chunk: 0 },
            Schedule::Dynamic { chunk: 2 },
            Schedule::Guided { min_chunk: 1 },
        ] {
            let s = LoopState::new(10, 10, sched, 4);
            assert!(collect_all(&s).is_empty());
        }
    }

    #[test]
    fn more_threads_than_iterations() {
        let s = LoopState::new(0, 3, Schedule::Static { chunk: 0 }, 8);
        assert_eq!(collect_all(&s), vec![0, 1, 2]);
    }

    #[test]
    fn guided_chunks_decay() {
        let s = LoopState::new(0, 1024, Schedule::Guided { min_chunk: 1 }, 2);
        let mut cur = StaticCursor::default();
        let (a_lo, a_hi) = s.next_chunk(0, &mut cur).unwrap();
        let (_, b_hi) = s.next_chunk(0, &mut cur).unwrap();
        let first = a_hi - a_lo;
        let second = b_hi - a_hi;
        assert!(second <= first, "guided chunks should not grow: {first} then {second}");
    }
}
