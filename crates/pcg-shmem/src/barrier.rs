//! A reusable sense-reversing barrier.
//!
//! Built from scratch (no `std::sync::Barrier`) so the team barrier used by
//! parallel regions is cheap to reuse across phases and can be benchmarked
//! as an ablation. The classic centralized sense-reversing design: each
//! arrival decrements a counter; the last arrival resets the counter and
//! flips the global sense, releasing spinners/waiters of the old sense.

use pcg_core::cancel::CancelToken;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A reusable barrier for a fixed team size.
pub struct Barrier {
    team: usize,
    remaining: AtomicUsize,
    sense: AtomicBool,
}

impl Barrier {
    /// Barrier for `team` participants. `team` must be nonzero.
    pub fn new(team: usize) -> Barrier {
        assert!(team > 0, "barrier team must be nonzero");
        Barrier {
            team,
            remaining: AtomicUsize::new(team),
            sense: AtomicBool::new(false),
        }
    }

    /// Team size this barrier synchronizes.
    pub fn team(&self) -> usize {
        self.team
    }

    /// Block until all `team` participants have arrived. Returns `true`
    /// for exactly one participant per phase (the last arrival), matching
    /// `std::sync::Barrier`'s leader convention.
    pub fn wait(&self) -> bool {
        self.wait_cancellable(None)
    }

    /// [`Barrier::wait`], but unwinds with the
    /// [`Cancelled`](pcg_core::cancel::Cancelled) marker if `token` is
    /// signalled while spinning. An unwinding participant leaves the
    /// barrier's arrival count short, poisoning the current phase — only
    /// safe because regions build a fresh barrier per region and a
    /// cancelled region is torn down, never re-entered.
    pub fn wait_cancellable(&self, token: Option<&CancelToken>) -> bool {
        let my_sense = !self.sense.load(Ordering::Relaxed);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last arrival: reset and release the phase.
            self.remaining.store(self.team, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
            true
        } else {
            // Spin with exponential backoff, then yield. Team sizes are
            // small (<= physical cores) and phases are short, so spinning
            // briefly before yielding is the right trade.
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != my_sense {
                if let Some(t) = token {
                    t.check();
                }
                if spins < 6 {
                    for _ in 0..(1 << spins) {
                        std::hint::spin_loop();
                    }
                    spins += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_thread_always_leader() {
        let b = Barrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
    }

    #[test]
    fn phases_are_ordered() {
        const TEAM: usize = 4;
        const PHASES: usize = 50;
        let b = Barrier::new(TEAM);
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..TEAM {
                s.spawn(|| {
                    for phase in 0..PHASES {
                        counter.fetch_add(1, Ordering::SeqCst);
                        b.wait();
                        // After the barrier, all TEAM increments of this
                        // phase must be visible.
                        let seen = counter.load(Ordering::SeqCst) as usize;
                        assert!(seen >= (phase + 1) * TEAM);
                        b.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst) as usize, TEAM * PHASES);
    }

    #[test]
    fn exactly_one_leader_per_phase() {
        const TEAM: usize = 8;
        let b = Barrier::new(TEAM);
        let leaders = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..TEAM {
                s.spawn(|| {
                    for _ in 0..20 {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 20);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_team_rejected() {
        let _ = Barrier::new(0);
    }

    #[test]
    fn cancelled_spinner_escapes_incomplete_barrier() {
        // One participant of a 2-team barrier arrives; the partner never
        // does. Signalling the token must free the spinner via an unwind
        // carrying the Cancelled marker.
        let b = Barrier::new(2);
        let token = CancelToken::new();
        std::thread::scope(|s| {
            let waiter = s.spawn(|| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    b.wait_cancellable(Some(&token));
                }))
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            token.cancel();
            let err = waiter.join().unwrap().unwrap_err();
            assert!(pcg_core::cancel::is_cancel_payload(err.as_ref()));
        });
    }
}
