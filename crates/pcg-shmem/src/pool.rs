//! The fork-join thread team.
//!
//! A [`Pool`] owns `nthreads - 1` persistent worker threads; the caller's
//! thread participates as team member 0, exactly like an OpenMP master
//! thread entering a `parallel` region. Launching a region publishes a
//! lifetime-erased closure under a mutex/condvar, runs it on every team
//! member, and joins on a countdown — the caller does not return until all
//! workers have finished with the borrowed closure, which is what makes
//! the lifetime erasure sound.

use crate::barrier::Barrier;
use crate::schedule::{LoopState, Schedule, StaticCursor};
use crate::timing::{ThreadCostModel, TimedState};
use parking_lot::{Condvar, Mutex};
use pcg_core::cancel::{self, CancelToken};
use pcg_core::{usage, ExecutionModel};
use std::ops::Range;
use std::time::Instant;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type RegionFn<'a> = dyn Fn(&ThreadCtx<'_>) + Sync + 'a;
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// A lifetime-erased pointer to the caller's region closure plus the
/// region's join state. Only ever dereferenced between region start and
/// the countdown the caller blocks on.
#[derive(Clone, Copy)]
struct Job {
    f: *const RegionFn<'static>,
    region: *const RegionState,
}
// SAFETY: the pointers target data the launching thread keeps alive until
// every worker has decremented the region countdown; workers never touch
// them afterwards.
unsafe impl Send for Job {}

struct RegionState {
    barrier: Barrier,
    remaining: AtomicUsize,
    /// The launching candidate's cancel token, captured at region entry
    /// so barrier spins and work-sharing chunk loops can observe a kill.
    cancel: Option<CancelToken>,
}

struct Slot {
    generation: u64,
    job: Option<Job>,
}

/// The candidate the team currently works for: its usage sink and cancel
/// token, published by [`Pool::retarget`] when a warm pool is leased to a
/// new candidate. Workers re-apply it to their thread-locals whenever the
/// epoch moves.
struct Target {
    epoch: u64,
    sink: Option<Arc<usage::Sink>>,
    token: Option<CancelToken>,
}

struct Shared {
    slot: Mutex<Slot>,
    work_ready: Condvar,
    finish_lock: Mutex<()>,
    finished: Condvar,
    critical: Mutex<()>,
    panic_payload: Mutex<Option<PanicPayload>>,
    shutdown: AtomicBool,
    target: Mutex<Target>,
}

/// A persistent team of threads supporting fork-join parallel regions and
/// OpenMP-style work-sharing loops.
pub struct Pool {
    shared: Arc<Shared>,
    nthreads: usize,
    workers: Vec<JoinHandle<()>>,
    timed: Option<TimedState>,
}

/// Per-team-member context available inside a [`Pool::parallel`] region.
pub struct ThreadCtx<'a> {
    tid: usize,
    nthreads: usize,
    region: &'a RegionState,
    shared: &'a Shared,
}

impl ThreadCtx<'_> {
    /// This member's id in `0..num_threads()`.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Team size of the enclosing region.
    pub fn num_threads(&self) -> usize {
        self.nthreads
    }

    /// Team-wide barrier (`#pragma omp barrier`). Unwinds with the
    /// cancellation marker instead of spinning forever if the harness
    /// kills the enclosing candidate.
    pub fn barrier(&self) {
        self.region.barrier.wait_cancellable(self.region.cancel.as_ref());
    }

    /// Unwind with the cancellation marker if the enclosing candidate has
    /// been killed; no-op otherwise. Work-sharing loops call this at
    /// chunk boundaries.
    fn check_cancel(&self) {
        if let Some(t) = &self.region.cancel {
            t.check();
        }
    }

    /// Run `f` under the team's critical-section lock
    /// (`#pragma omp critical`).
    pub fn critical<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.shared.critical.lock();
        f()
    }

    /// The contiguous static sub-range of `range` owned by this member
    /// (the `schedule(static)` block), handy for manual loop splitting.
    pub fn static_block(&self, range: Range<usize>) -> Range<usize> {
        let n = range.end.saturating_sub(range.start);
        let per = n.div_ceil(self.nthreads.max(1));
        let lo = range.start + (per * self.tid).min(n);
        let hi = range.start + (per * (self.tid + 1)).min(n);
        lo..hi
    }
}

impl Pool {
    /// Create a team of `nthreads` members (the calling thread plus
    /// `nthreads - 1` workers). Panics if `nthreads == 0`.
    pub fn new(nthreads: usize) -> Pool {
        assert!(nthreads > 0, "pool requires at least one thread");
        // Workers inherit the creating candidate's usage sink so API
        // calls they make attribute to that candidate, and its cancel
        // token so candidate code they run can poll `check_current`.
        // Both live in the retarget slot so a warm pool can be handed to
        // a later candidate (see `Pool::retarget`).
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot { generation: 0, job: None }),
            work_ready: Condvar::new(),
            finish_lock: Mutex::new(()),
            finished: Condvar::new(),
            critical: Mutex::new(()),
            panic_payload: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            target: Mutex::new(Target {
                epoch: 1,
                sink: usage::current_sink(),
                token: cancel::current_token(),
            }),
        });
        let workers = (1..nthreads)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pcg-shmem-{tid}"))
                    .spawn(move || worker_loop(shared, tid, nthreads))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Pool { shared, nthreads, workers, timed: None }
    }

    /// Re-aim the team at the calling candidate: capture this thread's
    /// usage sink and cancel token and have every worker install them
    /// before its next region. Called by the substrate lease layer when a
    /// warm pool is checked out, so a reused team attributes API calls to
    /// — and observes the kill switch of — its *current* candidate, not
    /// the one that created it. Must only be called while no region is in
    /// flight (a leased pool is exclusively owned).
    pub fn retarget(&self) {
        let mut t = self.shared.target.lock();
        t.epoch += 1;
        t.sink = usage::current_sink();
        t.token = cancel::current_token();
    }

    /// Create a team whose work-sharing loops run in **timed mode**:
    /// chunks execute one at a time behind a gate and are wall-timed, and
    /// each region adds `max-thread-work + fork/join overhead` to the
    /// pool's virtual clock (see [`crate::timing`]). Use this for
    /// performance measurements on machines with fewer cores than the
    /// simulated team; correctness behavior is identical to [`Pool::new`].
    pub fn new_timed(nthreads: usize, model: ThreadCostModel) -> Pool {
        let mut pool = Pool::new(nthreads);
        pool.timed = Some(TimedState::new(model));
        pool
    }

    /// Whether this pool accounts virtual time.
    pub fn is_timed(&self) -> bool {
        self.timed.is_some()
    }

    /// Accumulated virtual time of all timed regions (0 for untimed
    /// pools).
    pub fn virtual_elapsed(&self) -> f64 {
        self.timed.as_ref().map(|t| t.clock.load()).unwrap_or(0.0)
    }

    /// Reset the virtual clock.
    pub fn reset_virtual_clock(&self) {
        if let Some(t) = &self.timed {
            t.clock.store(0.0);
        }
    }

    /// Shared work-sharing driver: distributes `range` per `schedule`
    /// and hands `(tid, chunk)` pairs to `chunk_fn`, with per-chunk
    /// timing in timed mode.
    fn worksharing<F>(&self, range: Range<usize>, schedule: Schedule, chunk_fn: F)
    where
        F: Fn(usize, Range<usize>) + Sync,
    {
        let state = LoopState::new(range.start, range.end, schedule, self.nthreads);
        match &self.timed {
            None => self.parallel(|ctx| {
                let mut cursor = StaticCursor::default();
                while let Some((lo, hi)) = state.next_chunk(ctx.tid(), &mut cursor) {
                    ctx.check_cancel();
                    chunk_fn(ctx.tid(), lo..hi);
                }
            }),
            Some(st) => {
                let clocks = Mutex::new(vec![0.0f64; self.nthreads]);
                self.parallel(|ctx| {
                    let mut cursor = StaticCursor::default();
                    let mut local = 0.0f64;
                    while let Some((lo, hi)) = state.next_chunk(ctx.tid(), &mut cursor) {
                        ctx.check_cancel();
                        let _gate = st.gate.lock();
                        let t0 = Instant::now();
                        chunk_fn(ctx.tid(), lo..hi);
                        local += t0.elapsed().as_secs_f64() + st.model.chunk_dispatch;
                    }
                    clocks.lock()[ctx.tid()] = local;
                });
                st.charge_region(&clocks.into_inner());
            }
        }
    }

    /// Team size.
    pub fn num_threads(&self) -> usize {
        self.nthreads
    }

    /// Execute a parallel region: `f` runs once on every team member.
    /// Panics in any member are joined and re-thrown on the caller.
    pub fn parallel<'a, F>(&self, f: F)
    where
        F: Fn(&ThreadCtx<'_>) + Sync + 'a,
    {
        usage::record(ExecutionModel::OpenMp);
        // A killed candidate must not fork fresh regions; unwinding here,
        // before the job is published, needs no worker coordination.
        cancel::check_current();
        if let Some(st) = &self.timed {
            // Every region (work-sharing drivers included) passes through
            // here exactly once: charge the fork/join overhead.
            st.clock.fetch_add(st.model.fork_join(self.nthreads));
        }
        let region = RegionState {
            barrier: Barrier::new(self.nthreads),
            remaining: AtomicUsize::new(self.nthreads - 1),
            cancel: cancel::current_token(),
        };
        let f_ref: &RegionFn<'a> = &f;
        // SAFETY: we erase the lifetime; `parallel` does not return until
        // `region.remaining` hits zero, i.e. every worker is done with
        // both pointers. See `Job` safety comment.
        let job = Job {
            f: unsafe {
                std::mem::transmute::<*const RegionFn<'a>, *const RegionFn<'static>>(
                    f_ref as *const RegionFn<'a>,
                )
            },
            region: &region as *const RegionState,
        };

        if self.nthreads > 1 {
            let mut slot = self.shared.slot.lock();
            slot.generation += 1;
            slot.job = Some(job);
            drop(slot);
            self.shared.work_ready.notify_all();
        }

        // The caller participates as tid 0.
        let ctx = ThreadCtx { tid: 0, nthreads: self.nthreads, region: &region, shared: &self.shared };
        let my_result = catch_unwind(AssertUnwindSafe(|| f(&ctx)));

        // Join: wait for every worker to finish this region.
        if self.nthreads > 1 {
            let mut guard = self.shared.finish_lock.lock();
            while region.remaining.load(Ordering::Acquire) != 0 {
                self.shared.finished.wait(&mut guard);
            }
        }

        // Propagate worker panics first, then our own.
        if let Some(payload) = self.shared.panic_payload.lock().take() {
            resume_unwind(payload);
        }
        if let Err(payload) = my_result {
            resume_unwind(payload);
        }
    }

    /// Work-sharing loop (`#pragma omp parallel for schedule(...)`):
    /// `body(i)` runs once for each `i` in `range`.
    pub fn parallel_for<F>(&self, range: Range<usize>, schedule: Schedule, body: F)
    where
        F: Fn(usize) + Sync,
    {
        usage::record(ExecutionModel::OpenMp);
        self.worksharing(range, schedule, |_tid, chunk| {
            for i in chunk {
                body(i);
            }
        });
    }

    /// Chunk-granular work-sharing loop: `body(lo..hi)` per chunk. Useful
    /// when the body can vectorize over a contiguous block.
    pub fn parallel_for_chunks<F>(&self, range: Range<usize>, schedule: Schedule, body: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        usage::record(ExecutionModel::OpenMp);
        self.worksharing(range, schedule, |_tid, chunk| body(chunk));
    }

    /// Reduction loop (`reduction(op: acc)`): every thread folds its
    /// iterations into a private accumulator seeded with `identity`, and
    /// the partials are combined in thread-id order (deterministic for a
    /// fixed team size).
    pub fn parallel_for_reduce<T, FM, FR>(
        &self,
        range: Range<usize>,
        identity: T,
        fold: FM,
        combine: FR,
    ) -> T
    where
        T: Clone + Send + Sync,
        FM: Fn(T, usize) -> T + Sync,
        FR: Fn(T, T) -> T + Sync,
    {
        usage::record(ExecutionModel::OpenMp);
        let partials: Mutex<Vec<Option<T>>> = Mutex::new(vec![None; self.nthreads]);
        self.worksharing(range, Schedule::Static { chunk: 0 }, |tid, chunk| {
            let mut acc = partials.lock()[tid].take().unwrap_or_else(|| identity.clone());
            for i in chunk {
                acc = fold(acc, i);
            }
            partials.lock()[tid] = Some(acc);
        });
        let mut result = identity;
        for p in partials.into_inner().into_iter().flatten() {
            result = combine(result, p);
        }
        result
    }

    /// Split `data` into one contiguous mutable chunk per thread and run
    /// `body(tid, chunk_start, chunk)` — the safe idiom for loops that
    /// fill an output array with static scheduling.
    pub fn parallel_chunks_mut<T, F>(&self, data: &mut [T], body: F)
    where
        T: Send,
        F: Fn(usize, usize, &mut [T]) + Sync,
    {
        usage::record(ExecutionModel::OpenMp);
        let n = data.len();
        let per = n.div_ceil(self.nthreads).max(1);
        let chunks: Vec<(usize, &mut [T])> = {
            let mut rest = data;
            let mut out = Vec::with_capacity(self.nthreads);
            let mut offset = 0;
            while !rest.is_empty() {
                let take = per.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                out.push((offset, head));
                offset += take;
                rest = tail;
            }
            out
        };
        let chunks = Mutex::new(chunks.into_iter().map(Some).collect::<Vec<_>>());
        match &self.timed {
            None => self.parallel(|ctx| {
                ctx.check_cancel();
                let taken = {
                    let mut guard = chunks.lock();
                    guard.get_mut(ctx.tid()).and_then(Option::take)
                };
                if let Some((start, chunk)) = taken {
                    body(ctx.tid(), start, chunk);
                }
            }),
            Some(st) => {
                let clocks = Mutex::new(vec![0.0f64; self.nthreads]);
                self.parallel(|ctx| {
                    ctx.check_cancel();
                    let taken = {
                        let mut guard = chunks.lock();
                        guard.get_mut(ctx.tid()).and_then(Option::take)
                    };
                    if let Some((start, chunk)) = taken {
                        let _gate = st.gate.lock();
                        let t0 = Instant::now();
                        body(ctx.tid(), start, chunk);
                        clocks.lock()[ctx.tid()] =
                            t0.elapsed().as_secs_f64() + st.model.chunk_dispatch;
                    }
                });
                st.charge_region(&clocks.into_inner());
            }
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let mut slot = self.shared.slot.lock();
            slot.generation += 1;
            slot.job = None;
        }
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, tid: usize, nthreads: usize) {
    let mut last_generation = 0u64;
    let mut applied_epoch = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock();
            while slot.generation == last_generation {
                shared.work_ready.wait(&mut slot);
            }
            last_generation = slot.generation;
            slot.job
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let Some(job) = job else { continue };
        // Make sure this thread's sink/token match the candidate the
        // team currently works for before running any of its code.
        {
            let t = shared.target.lock();
            if t.epoch != applied_epoch {
                applied_epoch = t.epoch;
                usage::set_sink(t.sink.clone());
                cancel::set_token(t.token.clone());
            }
        }
        // SAFETY: the launching thread blocks until we decrement
        // `remaining`, keeping both pointers alive for this scope.
        let (f, region) = unsafe { (&*job.f, &*job.region) };
        let ctx = ThreadCtx { tid, nthreads, region, shared: &shared };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&ctx))) {
            let mut slot = shared.panic_payload.lock();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        // Signal completion; after this we must not touch `f`/`region`.
        let was = region.remaining.fetch_sub(1, Ordering::AcqRel);
        if was == 1 {
            let _guard = shared.finish_lock.lock();
            shared.finished.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn region_runs_on_every_member() {
        let pool = Pool::new(4);
        let hits = AtomicU64::new(0);
        let mask = AtomicU64::new(0);
        pool.parallel(|ctx| {
            hits.fetch_add(1, Ordering::SeqCst);
            mask.fetch_or(1 << ctx.tid(), Ordering::SeqCst);
            assert_eq!(ctx.num_threads(), 4);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
        assert_eq!(mask.load(Ordering::SeqCst), 0b1111);
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = Pool::new(1);
        let mut touched = vec![false; 100];
        let cell = crate::UnsafeSlice::new(&mut touched);
        pool.parallel_for(0..100, Schedule::default(), |i| unsafe { cell.write(i, true) });
        assert!(touched.iter().all(|&b| b));
    }

    #[test]
    fn parallel_for_visits_each_index_once() {
        let pool = Pool::new(4);
        for sched in [
            Schedule::Static { chunk: 0 },
            Schedule::Static { chunk: 3 },
            Schedule::Dynamic { chunk: 5 },
            Schedule::Guided { min_chunk: 2 },
        ] {
            let counts: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
            pool.parallel_for(0..1000, sched, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1), "{sched:?}");
        }
    }

    #[test]
    fn reduce_matches_sequential() {
        let pool = Pool::new(8);
        let xs: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let got = pool.parallel_for_reduce(0..xs.len(), 0.0, |a, i| a + xs[i], |a, b| a + b);
        let want: f64 = xs.iter().sum();
        assert!((got - want).abs() < 1e-9 * want.abs().max(1.0));
    }

    #[test]
    fn reduce_empty_range_is_identity() {
        let pool = Pool::new(4);
        let got = pool.parallel_for_reduce(10..10, 7i64, |a, _| a + 1, |a, b| a + b);
        // No chunks are dispatched for an empty range, so no thread
        // contributes a partial and the seed comes back unchanged.
        assert_eq!(got, 7);
    }

    #[test]
    fn barrier_inside_region_synchronizes_phases() {
        let pool = Pool::new(4);
        let phase1 = AtomicU64::new(0);
        pool.parallel(|ctx| {
            phase1.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            assert_eq!(phase1.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn critical_excludes() {
        let pool = Pool::new(8);
        // A plain `u64` mutated only inside the critical section: if the
        // lock failed to exclude, this would be UB the sanitizer of last
        // resort (miscounting) would surface.
        let total = std::cell::UnsafeCell::new(0u64);
        struct Wrap(std::cell::UnsafeCell<u64>);
        unsafe impl Sync for Wrap {}
        let w = Wrap(total);
        // Borrow the whole wrapper: edition-2021 closures would otherwise
        // capture the `UnsafeCell` field directly and bypass `Wrap: Sync`.
        let w = &w;
        pool.parallel(|ctx| {
            for _ in 0..100 {
                ctx.critical(|| unsafe {
                    *w.0.get() += 1;
                });
            }
        });
        assert_eq!(unsafe { *w.0.get() }, 800);
    }

    #[test]
    fn static_block_partitions() {
        let pool = Pool::new(3);
        let seen = Mutex::new(vec![0u8; 10]);
        pool.parallel(|ctx| {
            let block = ctx.static_block(0..10);
            let mut guard = seen.lock();
            for i in block {
                guard[i] += 1;
            }
        });
        assert!(seen.into_inner().iter().all(|&c| c == 1));
    }

    #[test]
    fn chunks_mut_covers_slice() {
        let pool = Pool::new(4);
        let mut data = vec![0usize; 103];
        pool.parallel_chunks_mut(&mut data, |_tid, start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = start + k;
            }
        });
        assert_eq!(data, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = Pool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel(|ctx| {
                if ctx.tid() == 2 {
                    panic!("boom from worker");
                }
            });
        }));
        assert!(result.is_err());
        // Pool remains usable after a panic.
        let hits = AtomicU64::new(0);
        pool.parallel(|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn sequential_regions_reuse_team() {
        let pool = Pool::new(4);
        for round in 0..50 {
            let sum = pool.parallel_for_reduce(0..100, 0u64, |a, i| a + i as u64, |a, b| a + b);
            assert_eq!(sum, 4950, "round {round}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = Pool::new(0);
    }

    #[test]
    fn timed_pool_is_correct_and_charges_time() {
        let pool = Pool::new_timed(4, crate::ThreadCostModel::default());
        assert!(pool.is_timed());
        let xs: Vec<f64> = (0..40_000).map(|i| i as f64).collect();
        let sum = pool.parallel_for_reduce(0..xs.len(), 0.0, |a, i| a + xs[i], |a, b| a + b);
        assert_eq!(sum, (40_000.0f64 * 39_999.0) / 2.0);
        assert!(pool.virtual_elapsed() > 0.0);
        pool.reset_virtual_clock();
        assert_eq!(pool.virtual_elapsed(), 0.0);
    }

    #[test]
    fn timed_mode_models_imbalance() {
        // All the work lands on one thread (range 0..1): the modeled
        // region time must be close to the full serial work, i.e. more
        // threads cannot shrink a single chunk.
        let work = |pool: &Pool| {
            pool.reset_virtual_clock();
            pool.parallel_for(0..1, Schedule::Static { chunk: 0 }, |_| {
                let mut acc = 0u64;
                for i in 0..200_000u64 {
                    acc = acc.wrapping_add(std::hint::black_box(i * i));
                }
                std::hint::black_box(acc);
            });
            pool.virtual_elapsed()
        };
        let p1 = Pool::new_timed(1, crate::ThreadCostModel::default());
        let p8 = Pool::new_timed(8, crate::ThreadCostModel::default());
        let t1 = work(&p1);
        let t8 = work(&p8);
        // The single chunk dominates both; allow wide noise margins but
        // reject any model that divides the chunk across threads.
        assert!(t8 > t1 * 0.2, "t1={t1} t8={t8}");
    }

    #[test]
    fn timed_mode_balanced_work_scales() {
        // Balanced loops split across logical threads: modeled time with
        // 8 threads should be well under the 1-thread time.
        let work = |pool: &Pool| {
            pool.reset_virtual_clock();
            let n = 400_000;
            pool.parallel_for(0..n, Schedule::Static { chunk: 0 }, |i| {
                std::hint::black_box(i * i);
            });
            pool.virtual_elapsed()
        };
        let p1 = Pool::new_timed(1, crate::ThreadCostModel::default());
        let p8 = Pool::new_timed(8, crate::ThreadCostModel::default());
        // Warm up and take the best of 3 to reduce timing noise.
        let t1 = (0..3).map(|_| work(&p1)).fold(f64::MAX, f64::min);
        let t8 = (0..3).map(|_| work(&p8)).fold(f64::MAX, f64::min);
        assert!(t8 < t1 * 0.7, "expected modeled speedup, t1={t1} t8={t8}");
    }

    #[test]
    fn cancelled_worksharing_loop_unwinds_between_chunks() {
        // A candidate stuck in an effectively endless dynamic loop: once
        // the token fires, every team member must unwind at its next
        // chunk boundary and the join must deliver the Cancelled marker.
        let token = CancelToken::new();
        let _g = cancel::install_token(Some(token.clone()));
        let pool = Pool::new(4);
        let started = AtomicBool::new(false);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(0..1_000_000_000, Schedule::Dynamic { chunk: 1 }, |_| {
                if !started.swap(true, Ordering::Relaxed) {
                    token.cancel();
                }
            });
        }));
        let payload = result.unwrap_err();
        assert!(cancel::is_cancel_payload(payload.as_ref()));
    }

    #[test]
    fn cancelled_barrier_wait_unwinds_whole_region() {
        // Thread 0 never reaches the barrier (it cancels and unwinds
        // instead); the remaining members are spinning in a barrier that
        // can never complete and must escape via the token.
        let token = CancelToken::new();
        let _g = cancel::install_token(Some(token.clone()));
        let pool = Pool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel(|ctx| {
                if ctx.tid() == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    token.cancel();
                    cancel::check_current();
                } else {
                    ctx.barrier();
                }
            });
        }));
        assert!(cancel::is_cancel_payload(result.unwrap_err().as_ref()));
    }

    #[test]
    fn retarget_reaims_workers_at_new_candidate() {
        use pcg_core::usage::UsageScope;
        // Built under candidate A's sink...
        let sink_a = Arc::new(usage::Sink::default());
        let ga = usage::install_sink(Some(Arc::clone(&sink_a)));
        let pool = Pool::new(4);
        drop(ga);
        // ...then leased to candidate B, whose sink and token the team
        // must adopt.
        let scope_b = UsageScope::begin();
        let token_b = CancelToken::new();
        let gb = cancel::install_token(Some(token_b.clone()));
        pool.retarget();
        pool.parallel(|_| usage::record(ExecutionModel::OpenMp));
        // Fire B's token with the caller's own thread-local cleared: the
        // unwind can only come from a worker that adopted the token.
        drop(gb);
        token_b.cancel();
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel(|ctx| {
                if ctx.tid() != 0 {
                    cancel::check_current();
                }
            });
        }))
        .unwrap_err();
        assert!(cancel::is_cancel_payload(err.as_ref()));
        // 1 region entry + 4 explicit records from the first region, plus
        // the second region's entry record on the caller.
        assert_eq!(scope_b.finish().calls(ExecutionModel::OpenMp), 6);
    }

    #[test]
    fn untimed_pool_reports_zero_virtual_time() {
        let pool = Pool::new(2);
        pool.parallel_for(0..100, Schedule::default(), |_| {});
        assert!(!pool.is_timed());
        assert_eq!(pool.virtual_elapsed(), 0.0);
    }
}
