//! Floating-point atomics (`#pragma omp atomic` analog).
//!
//! Rust has no `AtomicF64`; this is the standard CAS-loop construction on
//! an `AtomicU64` bit pattern.

use std::sync::atomic::{AtomicU64, Ordering};

/// An `f64` updated atomically via compare-and-swap loops.
#[derive(Debug, Default)]
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// A new atomic initialized to `value`.
    pub fn new(value: f64) -> AtomicF64 {
        AtomicF64 { bits: AtomicU64::new(value.to_bits()) }
    }

    /// Current value (relaxed).
    pub fn load(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Overwrite the value (relaxed).
    pub fn store(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Atomically apply `f` and return the previous value.
    pub fn fetch_update(&self, f: impl Fn(f64) -> f64) -> f64 {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = f(f64::from_bits(current)).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(prev) => return f64::from_bits(prev),
                Err(actual) => current = actual,
            }
        }
    }

    /// Atomic `+=`, returning the previous value.
    pub fn fetch_add(&self, delta: f64) -> f64 {
        self.fetch_update(|v| v + delta)
    }

    /// Atomic max-in-place, returning the previous value.
    pub fn fetch_max(&self, other: f64) -> f64 {
        self.fetch_update(|v| v.max(other))
    }

    /// Atomic min-in-place, returning the previous value.
    pub fn fetch_min(&self, other: f64) -> f64 {
        self.fetch_update(|v| v.min(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_atomic_under_contention() {
        let acc = AtomicF64::new(0.0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        acc.fetch_add(1.0);
                    }
                });
            }
        });
        assert_eq!(acc.load(), 80_000.0);
    }

    #[test]
    fn max_and_min() {
        let m = AtomicF64::new(f64::NEG_INFINITY);
        std::thread::scope(|s| {
            for t in 0..4 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..1000 {
                        m.fetch_max((t * 1000 + i) as f64);
                    }
                });
            }
        });
        assert_eq!(m.load(), 3999.0);

        let m = AtomicF64::new(f64::INFINITY);
        m.fetch_min(3.5);
        m.fetch_min(7.0);
        assert_eq!(m.load(), 3.5);
    }

    #[test]
    fn store_load_roundtrip() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.load(), 1.5);
        a.store(-0.0);
        assert_eq!(a.load(), 0.0);
        assert!(a.load().is_sign_negative());
    }

    #[test]
    fn fetch_update_returns_previous() {
        let a = AtomicF64::new(2.0);
        let prev = a.fetch_update(|v| v * 3.0);
        assert_eq!(prev, 2.0);
        assert_eq!(a.load(), 6.0);
    }
}
