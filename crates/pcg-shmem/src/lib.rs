//! # pcg-shmem
//!
//! OpenMP-analog shared-memory substrate for PCGBench-rs, built from
//! scratch on `std::thread` + `parking_lot`/`crossbeam` primitives.
//!
//! The paper's OpenMP prompts exercise fork-join loop parallelism:
//! `#pragma omp parallel for` with optional `schedule(...)` and
//! `reduction(...)` clauses, plus `critical`/`atomic` for irregular
//! updates. This crate provides the same constructs:
//!
//! * [`Pool`] — a persistent team of worker threads (the OpenMP thread
//!   team); regions fork onto the team and join at the end,
//! * [`Pool::parallel_for`] — work-sharing loops with
//!   [`Schedule::Static`], [`Schedule::Dynamic`], and [`Schedule::Guided`],
//! * [`Pool::parallel_for_reduce`] — the reduction clause,
//! * [`ThreadCtx::barrier`] / [`ThreadCtx::critical`] — team barrier and
//!   critical sections inside an explicit [`Pool::parallel`] region,
//! * [`AtomicF64`] — `#pragma omp atomic` analog for floating point,
//! * [`UnsafeSlice`] — disjoint-index shared writes, the implicit idiom of
//!   every OpenMP loop that fills an output array.
//!
//! Every public entry point records usage via `pcg_core::usage`, which the
//! harness uses to detect candidates that silently fall back to sequential
//! code (the paper's "did it really use OpenMP" check).
//!
//! ```
//! use pcg_shmem::prelude::*;
//!
//! let pool = Pool::new(4);
//! let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
//! let sum = pool.parallel_for_reduce(0..xs.len(), 0.0, |acc, i| acc + xs[i], |a, b| a + b);
//! assert_eq!(sum, 499_500.0);
//! ```

mod atomicf64;
mod barrier;
mod pool;
mod schedule;
pub mod timing;
mod unsafe_slice;

pub use atomicf64::AtomicF64;
pub use barrier::Barrier;
pub use pool::{Pool, ThreadCtx};
pub use schedule::Schedule;
pub use timing::ThreadCostModel;
pub use unsafe_slice::UnsafeSlice;

/// Convenient glob import for candidate implementations.
pub mod prelude {
    pub use crate::{AtomicF64, Pool, Schedule, ThreadCtx, UnsafeSlice};
}
