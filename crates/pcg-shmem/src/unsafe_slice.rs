//! Disjoint-index shared slice writes.
//!
//! Every OpenMP loop that fills an output array relies on the programmer
//! guaranteeing that distinct iterations write distinct elements. Rust's
//! borrow checker (correctly) rejects sharing `&mut [T]` across a team, so
//! this wrapper provides the same contract explicitly: writes are `unsafe`
//! and the caller promises index-disjointness (or ordering via barriers).

use std::cell::UnsafeCell;

/// A shared view over a mutable slice permitting per-index writes from
/// multiple threads, provided no two threads touch the same index
/// concurrently.
pub struct UnsafeSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
}

// SAFETY: access discipline is delegated to callers via the `unsafe`
// methods; the wrapper itself adds no aliasing beyond what callers assert.
unsafe impl<T: Send + Sync> Sync for UnsafeSlice<'_, T> {}
unsafe impl<T: Send> Send for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wrap a mutable slice for the duration of a parallel region.
    pub fn new(slice: &'a mut [T]) -> UnsafeSlice<'a, T> {
        // SAFETY: `UnsafeCell<T>` has the same layout as `T`.
        let data = unsafe { &*(slice as *mut [T] as *const [UnsafeCell<T>]) };
        UnsafeSlice { data }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Write `value` at `i`.
    ///
    /// # Safety
    /// No other thread may read or write index `i` concurrently.
    pub unsafe fn write(&self, i: usize, value: T) {
        *self.data[i].get() = value;
    }

    /// Read the element at `i`.
    ///
    /// # Safety
    /// No other thread may write index `i` concurrently.
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        *self.data[i].get()
    }

    /// Get a mutable reference to element `i`.
    ///
    /// # Safety
    /// No other thread may access index `i` while the reference lives.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        &mut *self.data[i].get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_parallel_writes() {
        let mut v = vec![0usize; 1000];
        let s = UnsafeSlice::new(&mut v);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let s = &s;
                scope.spawn(move || {
                    for i in (t..1000).step_by(4) {
                        unsafe { s.write(i, i * 2) };
                    }
                });
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn read_after_write() {
        let mut v = vec![1.0f64; 8];
        let s = UnsafeSlice::new(&mut v);
        unsafe {
            s.write(3, 42.0);
            assert_eq!(s.read(3), 42.0);
            *s.get_mut(4) += 1.0;
        }
        assert_eq!(v[3], 42.0);
        assert_eq!(v[4], 2.0);
    }

    #[test]
    fn len_matches() {
        let mut v = vec![0u8; 17];
        let s = UnsafeSlice::new(&mut v);
        assert_eq!(s.len(), 17);
        assert!(!s.is_empty());
        let mut e: Vec<u8> = vec![];
        assert!(UnsafeSlice::new(&mut e).is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let mut v = vec![0u8; 4];
        let s = UnsafeSlice::new(&mut v);
        unsafe { s.write(4, 1) };
    }
}
