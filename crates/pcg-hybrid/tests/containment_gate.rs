//! Hybrid containment: quiescence detection must see *through* the
//! compute-admission gate. Ranks that cycled the gate (threaded section)
//! and then parked on a receive are recognized as blocked, and a rank
//! parked *at* the gate itself counts as a waiter, not a runnable.

#![cfg(all(target_arch = "x86_64", unix))]

use pcg_core::PcgError;
use pcg_hybrid::HybridWorld;
use std::time::Instant;

/// Tag no rank ever sends.
const NEVER_SENT: u32 = 0x00C0_FFEE;

#[test]
fn gate_traffic_does_not_hide_deadlock() {
    let t0 = Instant::now();
    let run = HybridWorld::new(2, 2)
        .multiplexed()
        .run(|ctx| {
            // Pass through the compute-admission gate first: the token is
            // acquired and released around the section, so the detector
            // must cope with gate traffic preceding the circular wait.
            ctx.par_for(0..16, |i| {
                std::hint::black_box(i);
            });
            let comm = ctx.comm();
            let partner = comm.rank() ^ 1;
            let _: Vec<f64> = comm.recv(Some(partner), NEVER_SENT);
        })
        .map(|_| ());
    match run {
        Err(PcgError::Deadlock(msg)) => {
            assert!(msg.contains("wait-for-graph quiescent"), "{msg}");
            assert!(msg.contains("rank 0 waits recv(src=1"), "{msg}");
            assert!(msg.contains("rank 1 waits recv(src=0"), "{msg}");
        }
        other => panic!("expected deadlock verdict, got {other:?}"),
    }
    assert!(t0.elapsed().as_secs_f64() < 10.0, "hybrid deadlock verdict must be fail-fast");
}

#[test]
fn gate_cycling_preserves_results_and_clocks() {
    // The same program with and without forced multiplexing (and thus
    // with cooperative vs blocking gate waits) must produce identical
    // values and virtual clocks: gate-wait wall time is never charged.
    let prog = |ctx: &pcg_hybrid::HybridCtx<'_>| {
        let comm = ctx.comm();
        let partial =
            ctx.par_reduce(0..512, 0.0f64, |a, i| a + i as f64, |a, b| a + b);
        comm.allreduce_one(partial, pcg_mpisim::ReduceOp::Sum)
    };
    let threaded = HybridWorld::new(3, 2).run(prog).unwrap();
    let mux = HybridWorld::new(3, 2).multiplexed().run(prog).unwrap();
    assert_eq!(threaded.per_rank, mux.per_rank);
}
