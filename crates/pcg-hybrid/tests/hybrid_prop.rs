//! Property tests for the hybrid substrate: rank x thread decomposition
//! must agree with serial oracles for arbitrary shapes.

use pcg_hybrid::HybridWorld;
use pcg_mpisim::{block_range, ReduceOp};
use pcg_shmem::UnsafeSlice;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn hybrid_reduce_matches_oracle(
        data in proptest::collection::vec(-100i64..100, 1..1500),
        ranks in 1usize..5,
        threads in 1usize..5,
    ) {
        let data_ref = &data;
        let want: i64 = data.iter().sum();
        let out = HybridWorld::new(ranks, threads)
            .run(|ctx| {
                let comm = ctx.comm();
                let rg = block_range(data_ref.len(), comm.size(), comm.rank());
                let local = ctx.par_reduce(rg, 0i64, |a, i| a + data_ref[i], |a, b| a + b);
                comm.allreduce_one(local, ReduceOp::Sum)
            })
            .unwrap();
        for r in out.per_rank {
            prop_assert_eq!(r, want);
        }
    }

    #[test]
    fn hybrid_map_gather_matches_oracle(
        n in 1usize..1200,
        ranks in 1usize..5,
        threads in 1usize..4,
    ) {
        let out = HybridWorld::new(ranks, threads)
            .run(|ctx| {
                let comm = ctx.comm();
                let rg = block_range(n, comm.size(), comm.rank());
                let mut local = vec![0i64; rg.len()];
                let lo = rg.start;
                {
                    let slice = UnsafeSlice::new(&mut local);
                    ctx.par_for(0..rg.len(), |j| unsafe {
                        slice.write(j, ((lo + j) * 3) as i64);
                    });
                }
                comm.gather(0, &local)
            })
            .unwrap();
        let got = out.per_rank[0].as_ref().unwrap();
        prop_assert!(got.iter().enumerate().all(|(i, &v)| v == (i * 3) as i64));
    }

    #[test]
    fn virtual_time_monotone_in_work(ranks in 1usize..4) {
        let run = |per_rank_work: usize| {
            HybridWorld::new(ranks, 2)
                .run(|ctx| {
                    ctx.par_for(0..per_rank_work, |i| {
                        std::hint::black_box(i * i);
                    });
                })
                .unwrap()
                .elapsed
        };
        // 50x the work cannot be modeled as faster.
        prop_assert!(run(100_000) > run(2_000));
    }
}
