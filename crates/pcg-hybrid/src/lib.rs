//! # pcg-hybrid
//!
//! MPI+OpenMP-analog substrate: SPMD ranks from `pcg-mpisim`, each with a
//! private `pcg-shmem` thread pool for its local compute.
//!
//! ## Virtual-time model
//!
//! The paper runs hybrid prompts on up to 4 nodes x 64 threads — far more
//! hardware threads than a single dev machine has. Measuring threaded
//! sections naively would charge oversubscription stalls to the candidate.
//! Instead, hybrid worlds disable the simulator's automatic compute
//! measurement (`compute_scale = 0`) and each rank's local pool runs in
//! `pcg-shmem` **timed mode**: loop chunks are gate-serialized and
//! wall-timed, and the modeled section time (critical path across the
//! requested thread count, plus fork/join overheads) is charged to the
//! rank's virtual clock by the [`HybridCtx`] wrappers. The world admits
//! one computing rank at a time so chunk measurements stay clean.
//! Communication costs remain those of `pcg-mpisim`'s Hockney model, so
//! the hybrid column inherits realistic rank-level scaling behavior.
//!
//! ## Execution style
//!
//! Rank execution is inherited from `pcg-mpisim`: an oversubscribed
//! world runs its ranks as multiplexed fibers on a bounded worker pool
//! (see `pcg_mpisim::sched`), with records identical to thread-per-rank.
//! Only the *ranks* multiplex — each rank's timed compute pool keeps
//! real OS threads, because chunk wall-timing is the measurement. A
//! rank fiber blocking on its own pool's completion blocks only pool
//! progress, never another fiber's scheduling, so the two layers
//! compose without deadlock.
//!
//! ```
//! use pcg_hybrid::HybridWorld;
//! use pcg_mpisim::ReduceOp;
//!
//! let world = HybridWorld::new(4, 8);
//! let out = world
//!     .run(|ctx| {
//!         let local: Vec<f64> = (0..100).map(|i| i as f64).collect();
//!         let partial = ctx.par_reduce(0..local.len(), 0.0, |a, i| a + local[i], |a, b| a + b);
//!         ctx.comm().allreduce_one(partial, ReduceOp::Sum)
//!     })
//!     .unwrap();
//! assert_eq!(*out.root(), 4.0 * 4950.0);
//! ```

use pcg_core::{usage, ExecutionModel, PcgError};
use pcg_mpisim::{Comm, CostModel, RankTeam, SimOutcome, World};
use pcg_shmem::{Pool, Schedule, ThreadCostModel};
use std::ops::Range;

/// A hybrid world: `ranks` SPMD ranks, each requesting
/// `threads_per_rank` threads for local compute.
pub struct HybridWorld {
    ranks: usize,
    threads_per_rank: usize,
    cost: CostModel,
    force_mux: bool,
}

/// Warm substrate for hybrid worlds: a persistent [`RankTeam`] plus one
/// persistent timed pool per rank, so [`HybridWorld::run_on`] reuses
/// `ranks * threads_per_rank` threads instead of respawning them per
/// run (a fresh `ranks x threads` spawn storm is the hybrid column's
/// dominant fixed cost).
pub struct HybridTeam {
    team: RankTeam,
    pools: Vec<Pool>,
}

impl HybridTeam {
    /// Spawn rank threads and per-rank timed pools for a
    /// `ranks x threads_per_rank` hybrid world.
    pub fn new(ranks: usize, threads_per_rank: usize) -> HybridTeam {
        assert!(ranks > 0 && threads_per_rank > 0, "hybrid team dims must be nonzero");
        HybridTeam {
            team: RankTeam::new(ranks),
            pools: (0..ranks)
                .map(|_| Pool::new_timed(threads_per_rank, ThreadCostModel::default()))
                .collect(),
        }
    }

    /// Rank count.
    pub fn ranks(&self) -> usize {
        self.team.size()
    }

    /// Threads per rank pool.
    pub fn threads_per_rank(&self) -> usize {
        self.pools[0].num_threads()
    }
}

/// Per-rank context: the rank's communicator plus its thread pool.
pub struct HybridCtx<'w> {
    comm: &'w Comm<'w>,
    pool: &'w Pool,
    threads_requested: usize,
}

impl HybridWorld {
    /// A hybrid world of `ranks` x `threads_per_rank`.
    pub fn new(ranks: usize, threads_per_rank: usize) -> HybridWorld {
        assert!(ranks > 0 && threads_per_rank > 0, "hybrid world dims must be nonzero");
        HybridWorld { ranks, threads_per_rank, cost: CostModel::cluster(), force_mux: false }
    }

    /// Force the rank layer onto the multiplexed fiber scheduler even
    /// when the world is small enough for thread-per-rank. Required for
    /// containment worlds: guard-paged stacks and the wait-for-graph
    /// deadlock detector only exist on the fiber path.
    pub fn multiplexed(mut self) -> HybridWorld {
        self.force_mux = true;
        self
    }

    /// Override the communication cost model. (`compute_scale` is forced
    /// to zero; hybrid compute is charged by the [`HybridCtx`] wrappers.)
    pub fn with_cost_model(mut self, cost: CostModel) -> HybridWorld {
        self.cost = cost;
        self
    }

    /// Rank count.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Requested threads per rank.
    pub fn threads_per_rank(&self) -> usize {
        self.threads_per_rank
    }

    /// Total parallel resources (the paper's `n` for MPI+OpenMP).
    pub fn total_threads(&self) -> usize {
        self.ranks * self.threads_per_rank
    }

    /// Run an SPMD hybrid program.
    pub fn run<R, F>(&self, f: F) -> Result<SimOutcome<R>, PcgError>
    where
        R: Send,
        F: Fn(&HybridCtx<'_>) -> R + Sync,
    {
        let threads_requested = self.threads_per_rank;
        self.world().run(move |comm| {
            let pool = Pool::new_timed(threads_requested, ThreadCostModel::default());
            let ctx = HybridCtx { comm, pool: &pool, threads_requested };
            f(&ctx)
        })
    }

    /// Run an SPMD hybrid program on a warm [`HybridTeam`]: rank threads
    /// and per-rank pools are reused; every other per-run structure is
    /// rebuilt, and each rank pool is re-aimed at the calling candidate
    /// and clock-cleared before the program starts. Team dims must match
    /// the world's.
    pub fn run_on<R, F>(&self, team: &HybridTeam, f: F) -> Result<SimOutcome<R>, PcgError>
    where
        R: Send,
        F: Fn(&HybridCtx<'_>) -> R + Sync,
    {
        assert_eq!(team.ranks(), self.ranks, "hybrid team rank count must match world");
        assert_eq!(
            team.threads_per_rank(),
            self.threads_per_rank,
            "hybrid team thread count must match world"
        );
        let threads_requested = self.threads_per_rank;
        self.world().run_on(&team.team, move |comm| {
            let pool = &team.pools[comm.rank()];
            // The rank thread already carries the candidate's sink and
            // token (installed by the rank team); adopt them on the pool
            // workers and start the virtual clock from zero, exactly
            // like the cold path's freshly built pool.
            pool.retarget();
            pool.reset_virtual_clock();
            let ctx = HybridCtx { comm, pool, threads_requested };
            f(&ctx)
        })
    }

    fn world(&self) -> World {
        let cost = CostModel { compute_scale: 0.0, ..self.cost.clone() };
        let world = World::new(self.ranks).with_cost_model(cost).with_max_tokens(1);
        if self.force_mux { world.multiplexed() } else { world }
    }
}

impl<'w> HybridCtx<'w> {
    /// The rank's communicator.
    pub fn comm(&self) -> &'w Comm<'w> {
        self.comm
    }

    /// The rank's thread pool (for constructs without a timed wrapper;
    /// virtual time is then *not* charged for the section).
    pub fn pool(&self) -> &Pool {
        self.pool
    }

    /// Requested thread count (the `OMP_NUM_THREADS` analog).
    pub fn threads_per_rank(&self) -> usize {
        self.threads_requested
    }

    /// Run a threaded section and charge the pool's modeled virtual time
    /// for it to the rank clock. The section is bracketed by the compute
    /// admission gate: the rank (re)acquires the world's compute token on
    /// entry and releases it on exit, so a rank between sections does not
    /// serialize its peers' measurements — and a rank *waiting* for the
    /// gate parks cooperatively as a fiber, visible to the wait-for-graph
    /// deadlock detector. Virtual-time arithmetic is unchanged: only the
    /// pool's modeled elapsed time is charged, never gate-wait wall time.
    fn charged<R>(&self, f: impl FnOnce(&Pool) -> R) -> R {
        self.comm.compute_gate_enter();
        let before = self.pool.virtual_elapsed();
        let out = f(self.pool);
        self.comm.advance(self.pool.virtual_elapsed() - before);
        self.comm.compute_gate_exit();
        out
    }

    /// Timed threaded loop: executes on the rank's timed pool and charges
    /// the modeled section time to the rank's virtual clock.
    pub fn par_for<F>(&self, range: Range<usize>, body: F)
    where
        F: Fn(usize) + Sync,
    {
        usage::record(ExecutionModel::MpiOpenMp);
        self.charged(|pool| pool.parallel_for(range, Schedule::Static { chunk: 0 }, body));
    }

    /// Timed threaded reduction.
    pub fn par_reduce<T, FM, FR>(&self, range: Range<usize>, identity: T, fold: FM, combine: FR) -> T
    where
        T: Clone + Send + Sync,
        FM: Fn(T, usize) -> T + Sync,
        FR: Fn(T, T) -> T + Sync,
    {
        usage::record(ExecutionModel::MpiOpenMp);
        self.charged(|pool| pool.parallel_for_reduce(range, identity, fold, combine))
    }

    /// Timed threaded chunk-fill of a local buffer.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], body: F)
    where
        T: Send,
        F: Fn(usize, usize, &mut [T]) + Sync,
    {
        usage::record(ExecutionModel::MpiOpenMp);
        self.charged(|pool| pool.parallel_chunks_mut(data, body));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcg_mpisim::ReduceOp;
    use pcg_shmem::UnsafeSlice;

    #[test]
    fn hybrid_sum_matches_sequential() {
        let world = HybridWorld::new(3, 4);
        let n = 3000usize;
        let out = world
            .run(|ctx| {
                let comm = ctx.comm();
                let range = pcg_mpisim::block_range(n, comm.size(), comm.rank());
                let partial =
                    ctx.par_reduce(range.clone(), 0.0f64, |a, i| a + i as f64, |a, b| a + b);
                comm.reduce_one(0, partial, ReduceOp::Sum)
            })
            .unwrap();
        let want = (n * (n - 1) / 2) as f64;
        assert_eq!(out.root().unwrap(), want);
    }

    #[test]
    fn par_for_fills_local_buffers() {
        let world = HybridWorld::new(2, 2);
        let out = world
            .run(|ctx| {
                let mut local = vec![0usize; 64];
                // Hoist rank out of the loop: `Comm` is single-threaded
                // state (MPI_THREAD_FUNNELED analog) and is not Sync.
                let rank = ctx.comm().rank();
                {
                    let slice = UnsafeSlice::new(&mut local);
                    ctx.par_for(0..64, |i| unsafe { slice.write(i, i + rank) });
                }
                local[63]
            })
            .unwrap();
        assert_eq!(out.per_rank, vec![63, 64]);
    }

    #[test]
    fn virtual_time_charged_for_sections() {
        let world = HybridWorld::new(1, 4);
        let out = world
            .run(|ctx| {
                ctx.par_for(0..200_000, |i| {
                    std::hint::black_box(i * i);
                });
                ctx.comm().clock()
            })
            .unwrap();
        assert!(out.per_rank[0] > 0.0, "threaded section must advance virtual clock");
    }

    #[test]
    fn warm_team_matches_cold_run() {
        let world = HybridWorld::new(3, 4);
        let team = HybridTeam::new(3, 4);
        let n = 3000usize;
        let prog = |ctx: &HybridCtx<'_>| {
            let comm = ctx.comm();
            let range = pcg_mpisim::block_range(n, comm.size(), comm.rank());
            let partial = ctx.par_reduce(range, 0.0f64, |a, i| a + i as f64, |a, b| a + b);
            comm.allreduce_one(partial, ReduceOp::Sum)
        };
        let want = (n * (n - 1) / 2) as f64;
        let cold = world.run(prog).unwrap();
        assert_eq!(*cold.root(), want);
        // Repeated warm runs produce the same values on reused threads.
        for _ in 0..3 {
            let warm = world.run_on(&team, prog).unwrap();
            assert_eq!(warm.per_rank, cold.per_rank);
        }
    }

    #[test]
    #[should_panic(expected = "rank count must match")]
    fn warm_team_dim_mismatch_panics() {
        let world = HybridWorld::new(2, 4);
        let team = HybridTeam::new(3, 4);
        let _ = world.run_on(&team, |ctx| ctx.comm().rank());
    }

    #[test]
    fn dims_accessors() {
        let w = HybridWorld::new(4, 64);
        assert_eq!(w.ranks(), 4);
        assert_eq!(w.threads_per_rank(), 64);
        assert_eq!(w.total_threads(), 256);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dims_rejected() {
        let _ = HybridWorld::new(0, 4);
    }
}
