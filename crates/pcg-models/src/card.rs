//! Model metadata (paper Table 2).

use serde::{Deserialize, Serialize};

/// Static facts about a model, as reported in Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelCard {
    /// Display name.
    pub name: &'static str,
    /// Parameter count in billions; `None` for undisclosed (OpenAI).
    pub params_b: Option<f64>,
    /// Whether weights are available.
    pub weights_available: bool,
    /// License string; `None` for undisclosed.
    pub license: Option<&'static str>,
    /// HumanEval pass@1 as reported in Table 2.
    pub humaneval_pass1: f64,
    /// MBPP pass@1 as reported in Table 2 (`None` where unreported).
    pub mbpp_pass1: Option<f64>,
}

/// Table 2, verbatim.
pub fn table2() -> Vec<ModelCard> {
    vec![
        ModelCard {
            name: "CodeLlama-7B",
            params_b: Some(7.0),
            weights_available: true,
            license: Some("llama2"),
            humaneval_pass1: 29.98,
            mbpp_pass1: Some(41.4),
        },
        ModelCard {
            name: "CodeLlama-13B",
            params_b: Some(13.0),
            weights_available: true,
            license: Some("llama2"),
            humaneval_pass1: 35.07,
            mbpp_pass1: Some(47.0),
        },
        ModelCard {
            name: "StarCoderBase",
            params_b: Some(15.5),
            weights_available: true,
            license: Some("BigCode OpenRAIL-M"),
            humaneval_pass1: 30.35,
            mbpp_pass1: Some(49.0),
        },
        ModelCard {
            name: "CodeLlama-34B",
            params_b: Some(34.0),
            weights_available: true,
            license: Some("llama2"),
            humaneval_pass1: 45.11,
            mbpp_pass1: Some(55.0),
        },
        ModelCard {
            name: "Phind-CodeLlama-V2",
            params_b: Some(34.0),
            weights_available: true,
            license: Some("llama2"),
            humaneval_pass1: 71.95,
            mbpp_pass1: None,
        },
        ModelCard {
            name: "GPT-3.5",
            params_b: None,
            weights_available: false,
            license: None,
            humaneval_pass1: 61.50,
            mbpp_pass1: Some(52.2),
        },
        ModelCard {
            name: "GPT-4",
            params_b: None,
            weights_available: false,
            license: None,
            humaneval_pass1: 84.10,
            mbpp_pass1: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_shape() {
        let t = table2();
        assert_eq!(t.len(), 7);
        // Closed-source models have no parameter counts.
        assert!(t.iter().filter(|c| c.params_b.is_none()).count() == 2);
        // Phind tops the open models on HumanEval.
        let phind = t.iter().find(|c| c.name == "Phind-CodeLlama-V2").unwrap();
        assert!(t
            .iter()
            .filter(|c| c.weights_available && c.name != phind.name)
            .all(|c| c.humaneval_pass1 < phind.humaneval_pass1));
    }
}
