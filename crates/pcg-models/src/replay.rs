//! Offline candidate-pool replay: score dumped (or externally
//! generated) candidate pools deterministically from a directory.
//!
//! A pool directory holds a `manifest.txt` naming the model rows plus
//! one `pool-NNN.txt` per row listing, for every `(task, temperature)`
//! pair, the exact candidate kinds that model emitted — the lossless
//! [`CandidateKind::tag`] encoding, so corruption modes survive the
//! round trip. [`ReplaySource`] loads the directory once and serves
//! [`CandidateSource::sample`] lookups out of memory; [`dump_pool`]
//! writes a directory from any other source (typically the synthetic
//! zoo, or a real LLM's outputs mapped onto the defect taxonomy).
//!
//! **Identity:** the entire canonical content of the directory is
//! FNV-1a hashed into [`CandidateSource::config_salt`], which the
//! harness folds into the run's config hash. Two pools that differ in
//! any sample therefore produce different cell ids, so a resumed or
//! merged run can never splice verdicts from different pools. Replays
//! are bit-deterministic: the pool file *is* the sample stream.
//!
//! The format is line-oriented ASCII so pools can be produced by
//! anything that can write text:
//!
//! ```text
//! manifest.txt:   pcg-candidate-pool-v1
//!                 model <weights 0|1> <name…>
//! pool-NNN.txt:   task <dense-index> temp <f64-bits-hex> <tag> <tag>…
//! ```

use crate::source::{CandidateSource, SampleSpec};
use pcg_core::plan::{fnv1a_extend, fnv1a_start};
use pcg_core::{CandidateKind, TaskId};
use std::collections::BTreeMap;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Magic first line of `manifest.txt`; bump on format changes.
const POOL_MAGIC: &str = "pcg-candidate-pool-v1";

/// Version tag folded into the config salt ahead of the content hash.
const SALT_TAG: &[u8] = b"pcg-replay-pool-v1";

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A candidate pool loaded from a dump directory. See the module docs
/// for the format and identity rules.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    dir: PathBuf,
    names: Vec<String>,
    weights: Vec<bool>,
    /// Per row: `(task dense index, temperature bits) -> kinds`.
    pools: Vec<BTreeMap<(u32, u64), Vec<CandidateKind>>>,
    /// FNV-1a over the canonical content (names, weights, every entry).
    content_hash: u64,
}

impl ReplaySource {
    /// Load a pool directory. Every parse problem is an
    /// [`io::ErrorKind::InvalidData`] error naming the offending file
    /// and line — a malformed pool must never be silently half-loaded.
    pub fn open(dir: &Path) -> io::Result<ReplaySource> {
        let manifest_path = dir.join("manifest.txt");
        let manifest = std::fs::read_to_string(&manifest_path)?;
        let mut lines = manifest.lines();
        match lines.next() {
            Some(POOL_MAGIC) => {}
            other => {
                return Err(bad(format!(
                    "{}: expected `{POOL_MAGIC}` header, got {other:?}",
                    manifest_path.display()
                )))
            }
        }
        let mut names = Vec::new();
        let mut weights = Vec::new();
        for (lineno, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let rest = line.strip_prefix("model ").ok_or_else(|| {
                bad(format!(
                    "{}:{}: expected `model <0|1> <name>`, got `{line}`",
                    manifest_path.display(),
                    lineno + 2
                ))
            })?;
            let (flag, name) = rest.split_once(' ').ok_or_else(|| {
                bad(format!("{}:{}: missing model name", manifest_path.display(), lineno + 2))
            })?;
            let w = match flag {
                "0" => false,
                "1" => true,
                _ => {
                    return Err(bad(format!(
                        "{}:{}: weights flag must be 0 or 1, got `{flag}`",
                        manifest_path.display(),
                        lineno + 2
                    )))
                }
            };
            if name.is_empty() {
                return Err(bad(format!(
                    "{}:{}: empty model name",
                    manifest_path.display(),
                    lineno + 2
                )));
            }
            names.push(name.to_string());
            weights.push(w);
        }
        if names.is_empty() {
            return Err(bad(format!("{}: no model rows", manifest_path.display())));
        }

        let mut pools = Vec::with_capacity(names.len());
        for i in 0..names.len() {
            let path = dir.join(pool_file_name(i));
            let text = std::fs::read_to_string(&path)?;
            let mut pool = BTreeMap::new();
            for (lineno, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let mut parts = line.split_whitespace();
                let ctx = || format!("{}:{}", path.display(), lineno + 1);
                if parts.next() != Some("task") {
                    return Err(bad(format!("{}: expected `task …`, got `{line}`", ctx())));
                }
                let task: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad(format!("{}: bad task index", ctx())))?;
                if task as usize >= pcg_core::NUM_TASKS {
                    return Err(bad(format!("{}: task index {task} out of range", ctx())));
                }
                if parts.next() != Some("temp") {
                    return Err(bad(format!("{}: expected `temp`", ctx())));
                }
                let temp_bits = parts
                    .next()
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .ok_or_else(|| bad(format!("{}: bad temperature bits", ctx())))?;
                let kinds: Vec<CandidateKind> = parts
                    .map(|tag| {
                        CandidateKind::from_tag(tag)
                            .ok_or_else(|| bad(format!("{}: unknown kind tag `{tag}`", ctx())))
                    })
                    .collect::<io::Result<_>>()?;
                if kinds.is_empty() {
                    return Err(bad(format!("{}: empty sample list", ctx())));
                }
                if pool.insert((task, temp_bits), kinds).is_some() {
                    return Err(bad(format!(
                        "{}: duplicate (task {task}, temp) entry",
                        ctx()
                    )));
                }
            }
            pools.push(pool);
        }

        let mut h = fnv1a_start();
        for ((name, w), pool) in names.iter().zip(&weights).zip(&pools) {
            h = fnv1a_extend(h, name.as_bytes());
            h = fnv1a_extend(h, &[0xff, u8::from(*w)]);
            for ((task, temp_bits), kinds) in pool {
                h = fnv1a_extend(h, &task.to_le_bytes());
                h = fnv1a_extend(h, &temp_bits.to_le_bytes());
                for k in kinds {
                    h = fnv1a_extend(h, k.tag().as_bytes());
                    h = fnv1a_extend(h, b"\n");
                }
            }
        }
        Ok(ReplaySource { dir: dir.to_path_buf(), names, weights, pools, content_hash: h })
    }

    /// FNV-1a over the pool's canonical content. Stable across loads,
    /// changes when any sample changes; the harness uses it to suffix
    /// replay cache paths so pools never collide with synthetic caches.
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// The directory this pool was loaded from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl CandidateSource for ReplaySource {
    fn model_names(&self) -> Vec<String> {
        self.names.clone()
    }

    fn weights_available(&self, model: usize) -> bool {
        self.weights[model]
    }

    fn sample(&self, model: usize, task: TaskId, spec: &SampleSpec) -> Vec<CandidateKind> {
        assert!(
            spec.deadlock_rate == 0.0 && spec.stack_hog_rate == 0.0,
            "chaos injection perturbs generated pools, but a replay pool is fixed \
             content — re-dump the pool from a chaos-configured source instead"
        );
        let key = (task.index() as u32, spec.temperature.to_bits());
        let kinds = self.pools[model].get(&key).unwrap_or_else(|| {
            panic!(
                "replay pool {} has no samples for model `{}` task {task:?} at \
                 temperature {} — the pool was dumped under a different config",
                self.dir.display(),
                self.names[model],
                spec.temperature,
            )
        });
        assert!(
            kinds.len() >= spec.n,
            "replay pool {} holds {} samples for model `{}` task {task:?}, run wants {}",
            self.dir.display(),
            kinds.len(),
            self.names[model],
            spec.n,
        );
        kinds[..spec.n].to_vec()
    }

    fn config_salt(&self) -> Vec<u8> {
        let mut salt = SALT_TAG.to_vec();
        salt.push(0xff);
        salt.extend_from_slice(&self.content_hash.to_le_bytes());
        salt
    }
}

/// The pool file name for manifest row `i`.
fn pool_file_name(i: usize) -> String {
    format!("pool-{i:03}.txt")
}

/// Dump `source`'s pools for `tasks` × `specs` into `dir` (created if
/// missing), in the format [`ReplaySource::open`] reads. High-cost
/// sources beware: this samples every (row, task, spec) combination.
pub fn dump_pool(
    dir: &Path,
    source: &(impl CandidateSource + ?Sized),
    tasks: &[TaskId],
    specs: &[SampleSpec],
) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let names = source.model_names();
    let mut manifest = String::from(POOL_MAGIC);
    manifest.push('\n');
    for (i, name) in names.iter().enumerate() {
        manifest.push_str(&format!(
            "model {} {name}\n",
            u8::from(source.weights_available(i))
        ));
    }
    std::fs::write(dir.join("manifest.txt"), manifest)?;
    for i in 0..names.len() {
        let mut f = std::io::BufWriter::new(std::fs::File::create(dir.join(pool_file_name(i)))?);
        for &task in tasks {
            for spec in specs {
                let kinds = source.sample(i, task, spec);
                write!(
                    f,
                    "task {} temp {:016x}",
                    task.index(),
                    spec.temperature.to_bits()
                )?;
                for k in &kinds {
                    write!(f, " {}", k.tag())?;
                }
                writeln!(f)?;
            }
        }
        f.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticModel;
    use pcg_core::{ExecutionModel, ProblemId, ProblemType};

    fn tasks() -> Vec<TaskId> {
        let p = ProblemId::new(ProblemType::Transform, 0);
        vec![p.task(ExecutionModel::Serial), p.task(ExecutionModel::Mpi)]
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join(format!("pcg-replay-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn dump_and_replay_round_trip_exactly() {
        let dir = tmpdir("roundtrip");
        let zoo = vec![
            SyntheticModel::by_name("CodeLlama-7B").unwrap(),
            SyntheticModel::by_name("GPT-4").unwrap(),
        ];
        let specs = [SampleSpec::new(0.2, 6, 42), SampleSpec::new(0.8, 10, 42)];
        dump_pool(&dir, &zoo, &tasks(), &specs).unwrap();
        let replay = ReplaySource::open(&dir).unwrap();
        assert_eq!(replay.model_names(), zoo.model_names());
        assert!(replay.weights_available(0));
        assert!(!replay.weights_available(1));
        for i in 0..2 {
            for &t in &tasks() {
                for spec in &specs {
                    assert_eq!(
                        replay.sample(i, t, spec),
                        zoo.sample(i, t, spec),
                        "replayed kinds must equal the dumped stream"
                    );
                }
            }
        }
        // Fewer samples than dumped: a deterministic prefix.
        let short = SampleSpec::new(0.2, 3, 42);
        let full = zoo.sample(0, tasks()[0], &specs[0]);
        assert_eq!(replay.sample(0, tasks()[0], &short), full[..3].to_vec());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn salt_is_stable_nonempty_and_content_sensitive() {
        let dir = tmpdir("salt");
        let zoo = vec![SyntheticModel::by_name("CodeLlama-7B").unwrap()];
        let specs = [SampleSpec::new(0.2, 4, 1)];
        dump_pool(&dir, &zoo, &tasks(), &specs).unwrap();
        let a = ReplaySource::open(&dir).unwrap();
        let b = ReplaySource::open(&dir).unwrap();
        assert!(!a.config_salt().is_empty(), "replay pools must perturb the config hash");
        assert_eq!(a.config_salt(), b.config_salt());
        // Flip one sample tag: the salt must change.
        let pool = dir.join("pool-000.txt");
        let text = std::fs::read_to_string(&pool).unwrap();
        let first_tag = text.split_whitespace().nth(4).unwrap().to_string();
        let replacement = if first_tag == "nobuild" { "crash" } else { "nobuild" };
        std::fs::write(&pool, text.replacen(&first_tag, replacement, 1)).unwrap();
        let c = ReplaySource::open(&dir).unwrap();
        assert_ne!(a.config_salt(), c.config_salt());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_pools_are_rejected_loudly() {
        let dir = tmpdir("malformed");
        std::fs::create_dir_all(&dir).unwrap();
        // Bad magic.
        std::fs::write(dir.join("manifest.txt"), "wrong-magic\nmodel 1 A\n").unwrap();
        assert!(ReplaySource::open(&dir).is_err());
        // Unknown kind tag.
        std::fs::write(dir.join("manifest.txt"), format!("{POOL_MAGIC}\nmodel 1 A\n"))
            .unwrap();
        std::fs::write(dir.join("pool-000.txt"), "task 0 temp 3fc999999999999a gremlin\n")
            .unwrap();
        let err = ReplaySource::open(&dir).unwrap_err();
        assert!(err.to_string().contains("gremlin"), "{err}");
        // Out-of-range task index.
        std::fs::write(dir.join("pool-000.txt"), "task 9999 temp 0 correct\n").unwrap();
        assert!(ReplaySource::open(&dir).is_err());
        // Missing pool file entirely.
        std::fs::remove_file(dir.join("pool-000.txt")).unwrap();
        assert!(ReplaySource::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "different config")]
    fn missing_pool_entry_panics_with_context() {
        let dir = tmpdir("missing-entry");
        let zoo = vec![SyntheticModel::by_name("CodeLlama-7B").unwrap()];
        dump_pool(&dir, &zoo, &tasks(), &[SampleSpec::new(0.2, 4, 1)]).unwrap();
        let replay = ReplaySource::open(&dir).unwrap();
        let t = tasks()[0];
        std::fs::remove_dir_all(&dir).unwrap();
        // Ask at a temperature the pool was never dumped for.
        let _ = replay.sample(0, t, &SampleSpec::new(0.5, 4, 1));
    }
}
