//! Candidate sampling.

use crate::calibration::{exec_rates, Calibration};
use crate::card::{table2, ModelCard};
use pcg_core::rng::{rng_for, Purpose};
use pcg_core::{CandidateKind, Corruption, Quality, TaskId};
use rand::Rng;

/// A calibrated synthetic stand-in for one paper model.
#[derive(Debug, Clone)]
pub struct SyntheticModel {
    card: ModelCard,
    calib: Calibration,
    /// Small open models have distinct problem-type behavior (Fig. 3).
    small: bool,
}

impl SyntheticModel {
    /// The seven paper models with calibration targets transcribed from
    /// the paper: serial/parallel pass@1 pairs (Figure 2: GPT-3.5 and
    /// GPT-4 at 76% serial and 40%/38% parallel; Phind-V2 at 32%
    /// parallel; the remaining open models between 10% and 19%).
    pub fn zoo() -> Vec<SyntheticModel> {
        let cards = table2();
        let mk = |name: &str| cards.iter().find(|c| c.name == name).expect("card").clone();
        vec![
            SyntheticModel {
                card: mk("CodeLlama-7B"),
                calib: Calibration {
                    exec_rate: exec_rates(0.38, 0.12, 0.55),
                    efficient_share: 0.55,
                    collapse_prob: 0.15,
                    failure_mix: [0.30, 0.35, 0.15, 0.12, 0.08, 0.0, 0.0, 0.0],
                },
                small: true,
            },
            SyntheticModel {
                card: mk("CodeLlama-13B"),
                calib: Calibration {
                    exec_rate: exec_rates(0.45, 0.16, 0.60),
                    efficient_share: 0.60,
                    collapse_prob: 0.15,
                    failure_mix: [0.27, 0.37, 0.15, 0.12, 0.09, 0.0, 0.0, 0.0],
                },
                small: true,
            },
            SyntheticModel {
                card: mk("StarCoderBase"),
                calib: Calibration {
                    exec_rate: exec_rates(0.42, 0.14, 0.50),
                    efficient_share: 0.58,
                    collapse_prob: 0.12,
                    failure_mix: [0.32, 0.33, 0.16, 0.10, 0.09, 0.0, 0.0, 0.0],
                },
                small: true,
            },
            SyntheticModel {
                card: mk("CodeLlama-34B"),
                calib: Calibration {
                    // Worse than 13B on parallel prompts (the paper's
                    // confidence/mode-collapse observation).
                    exec_rate: exec_rates(0.50, 0.15, 1.20),
                    efficient_share: 0.55,
                    collapse_prob: 0.55,
                    failure_mix: [0.24, 0.40, 0.14, 0.12, 0.10, 0.0, 0.0, 0.0],
                },
                small: false,
            },
            SyntheticModel {
                card: mk("Phind-CodeLlama-V2"),
                calib: Calibration {
                    exec_rate: exec_rates(0.66, 0.32, 1.30),
                    efficient_share: 0.72,
                    collapse_prob: 0.20,
                    failure_mix: [0.18, 0.42, 0.16, 0.13, 0.11, 0.0, 0.0, 0.0],
                },
                small: false,
            },
            SyntheticModel {
                card: mk("GPT-3.5"),
                calib: Calibration {
                    exec_rate: exec_rates(0.85, 0.40, 1.30),
                    efficient_share: 0.70,
                    collapse_prob: 0.20,
                    failure_mix: [0.12, 0.48, 0.18, 0.12, 0.10, 0.0, 0.0, 0.0],
                },
                small: false,
            },
            SyntheticModel {
                card: mk("GPT-4"),
                calib: Calibration {
                    exec_rate: exec_rates(0.85, 0.38, 1.35),
                    efficient_share: 0.85,
                    collapse_prob: 0.55,
                    failure_mix: [0.10, 0.50, 0.18, 0.12, 0.10, 0.0, 0.0, 0.0],
                },
                small: false,
            },
        ]
    }

    /// Look up a zoo model by name.
    pub fn by_name(name: &str) -> Option<SyntheticModel> {
        SyntheticModel::zoo().into_iter().find(|m| m.card.name == name)
    }

    /// Build a custom synthetic model (e.g. to test a hypothetical
    /// fine-tune against the zoo). `small` selects the small-open-model
    /// problem-type profile.
    pub fn custom(card: ModelCard, calib: Calibration, small: bool) -> SyntheticModel {
        SyntheticModel { card, calib, small }
    }

    /// Route failure mass onto the containment defects: `deadlock_rate`
    /// and `stack_hog_rate` become the `deadlock`/`stackhog` weights of
    /// the failure mix (relative to the mix's other weights). With both
    /// rates zero this is an exact no-op — the mix total is unchanged,
    /// so every RNG draw and therefore every sampled stream is
    /// byte-identical to the un-chaosed model.
    pub fn with_chaos(mut self, deadlock_rate: f64, stack_hog_rate: f64) -> SyntheticModel {
        assert!(
            deadlock_rate >= 0.0 && stack_hog_rate >= 0.0,
            "chaos rates must be non-negative"
        );
        self.calib.failure_mix[6] += deadlock_rate;
        self.calib.failure_mix[7] += stack_hog_rate;
        self
    }

    /// The model's Table 2 card.
    pub fn card(&self) -> &ModelCard {
        &self.card
    }

    /// The calibration table (exposed for reporting and tests).
    pub fn calibration(&self) -> &Calibration {
        &self.calib
    }

    /// Whether this model belongs to the "small open model" class.
    pub fn is_small(&self) -> bool {
        self.small
    }

    /// Probability one sample for `task` is correct (marginal over the
    /// task's solvability).
    pub fn p_correct(&self, task: TaskId) -> f64 {
        self.calib.p_correct(task, self.small)
    }

    /// Within-task success rate for solvable tasks. The paper's pass@k
    /// curves plateau well below 1 (Fig. 4), implying strong per-task
    /// correlation: a task is either solvable for a model (at roughly
    /// this rate) or effectively unsolvable. Splitting the marginal
    /// rate `p` into `P(solvable) = p / WITHIN` and
    /// `P(correct | solvable) = WITHIN` preserves pass@1 while capping
    /// pass@k near `p / WITHIN` — e.g. Phind's 0.32 parallel pass@1
    /// plateauing at ~0.46 pass@20 (0.32/0.7), as reported.
    const WITHIN_RATE: f64 = 0.7;

    /// Resolve the task's per-(model, seed) solvability and the
    /// conditional success rate. Solvable tasks draw their within-task
    /// rate from a two-point mixture (mostly-reliable vs barely
    /// solvable) whose mean is [`Self::WITHIN_RATE`], giving the
    /// gradual-then-plateau pass@k curves of Figure 4 while preserving
    /// the marginal pass@1.
    fn task_rate(&self, task: TaskId, global_seed: u64, model_tag: u64) -> f64 {
        let p = self.p_correct(task);
        let f = (p / Self::WITHIN_RATE).min(1.0);
        let mut aux = rng_for(global_seed ^ model_tag, task, Purpose::Aux, 0);
        if !aux.gen_bool(f) {
            return 0.0;
        }
        if f >= 1.0 {
            return p;
        }
        // Mixture {0.12 w.p. 0.3, 0.949 w.p. 0.7}: mean == WITHIN_RATE.
        if aux.gen_bool(0.3) {
            0.12
        } else {
            0.949
        }
    }

    /// Draw one candidate kind with the given per-task success rate.
    fn draw(&self, task: TaskId, p: f64, rng: &mut impl Rng) -> CandidateKind {
        if p > 0.0 && rng.gen_bool(p) {
            let quality = if rng.gen_bool(self.calib.efficient_share) {
                Quality::Efficient
            } else {
                Quality::Inefficient
            };
            return CandidateKind::Correct(quality);
        }
        // Failure mix: [build, wrong, sequential, crash, timeout, flaky,
        // deadlock, stackhog].
        let mut mix = self.calib.failure_mix;
        if !task.model.is_parallel() {
            // No parallel API to skip on serial tasks.
            mix[1] += mix[2];
            mix[2] = 0.0;
        }
        let total: f64 = mix.iter().sum();
        let mut draw = rng.gen_range(0.0..total);
        let mut idx = 0;
        for (i, &w) in mix.iter().enumerate() {
            if draw < w {
                idx = i;
                break;
            }
            draw -= w;
        }
        match idx {
            0 => CandidateKind::BuildFailure,
            1 => {
                let c = Corruption::ALL[rng.gen_range(0..Corruption::ALL.len())];
                CandidateKind::WrongOutput(c)
            }
            2 => CandidateKind::SequentialFallback,
            3 => CandidateKind::RuntimeCrash,
            4 => CandidateKind::Timeout,
            5 => CandidateKind::Flaky,
            6 => CandidateKind::Deadlock,
            _ => CandidateKind::StackHog,
        }
    }

    /// Generate `n` samples for `task` at `temperature`, deterministic
    /// in `global_seed`. Lower temperatures increase the chance the
    /// model collapses to a single repeated output for the task.
    pub fn sample_n(
        &self,
        task: TaskId,
        temperature: f64,
        n: usize,
        global_seed: u64,
    ) -> Vec<CandidateKind> {
        self.sample_n_as(self.card.name, task, temperature, n, global_seed)
    }

    /// [`SyntheticModel::sample_n`] with the RNG stream keyed by an
    /// explicit row `label` instead of the card name. Multi-variant
    /// grids sample each `name@variant` row as its own independent
    /// stream (so variants are statistically independent draws, like
    /// re-prompting a real model); with `label == card.name` this is
    /// exactly `sample_n`.
    pub fn sample_n_as(
        &self,
        label: &str,
        task: TaskId,
        temperature: f64,
        n: usize,
        global_seed: u64,
    ) -> Vec<CandidateKind> {
        let model_tag = label.bytes().fold(0u64, |h, b| {
            h.wrapping_mul(131).wrapping_add(u64::from(b))
        });
        let mut rng = rng_for(global_seed ^ model_tag, task, Purpose::ModelSample, 0);
        let p = self.task_rate(task, global_seed, model_tag);
        // Temperature scales collapse: cold sampling repeats outputs.
        let collapse_scale = (0.9 - temperature).clamp(0.0, 1.0) / 0.7;
        let p_collapse = self.calib.collapse_prob * collapse_scale;
        if rng.gen_bool(p_collapse.clamp(0.0, 1.0)) {
            let kind = self.draw(task, p, &mut rng);
            return vec![kind; n];
        }
        (0..n).map(|_| self.draw(task, p, &mut rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcg_core::{ExecutionModel, ProblemId, ProblemType};

    fn task(model: ExecutionModel) -> TaskId {
        ProblemId::new(ProblemType::Transform, 0).task(model)
    }

    #[test]
    fn sampling_is_deterministic() {
        let m = SyntheticModel::by_name("GPT-3.5").unwrap();
        let a = m.sample_n(task(ExecutionModel::OpenMp), 0.2, 20, 42);
        let b = m.sample_n(task(ExecutionModel::OpenMp), 0.2, 20, 42);
        assert_eq!(a, b);
        let c = m.sample_n(task(ExecutionModel::OpenMp), 0.2, 20, 43);
        assert!(a != c || a.iter().all(|k| *k == a[0]), "seed should matter (or collapse)");
    }

    #[test]
    fn empirical_rate_tracks_calibration() {
        // Success is bimodal per (task, seed): averaging over many seeds
        // must recover the marginal rate.
        let m = SyntheticModel::by_name("GPT-3.5").unwrap();
        let t = task(ExecutionModel::OpenMp);
        let p = m.p_correct(t);
        let mut correct = 0usize;
        let per_seed = 50;
        let seeds = 400u64;
        for seed in 0..seeds {
            for k in m.sample_n(t, 0.8, per_seed, seed) {
                if matches!(k, CandidateKind::Correct(_)) {
                    correct += 1;
                }
            }
        }
        let freq = correct as f64 / (per_seed as u64 * seeds) as f64;
        assert!((freq - p).abs() < 0.06, "freq={freq} expected ~{p}");
    }

    #[test]
    fn pass_at_k_plateaus_from_solvability() {
        // With many samples per task, the fraction of (task, seed)
        // pairs that are solvable bounds pass@k: it must land near
        // p / WITHIN_RATE, far below 1.
        let m = SyntheticModel::by_name("Phind-CodeLlama-V2").unwrap();
        let t = task(ExecutionModel::Mpi);
        let p = m.p_correct(t);
        let mut solvable = 0usize;
        let seeds = 600u64;
        for seed in 0..seeds {
            let kinds = m.sample_n(t, 0.8, 40, seed);
            if kinds.iter().any(|k| matches!(k, CandidateKind::Correct(_))) {
                solvable += 1;
            }
        }
        let frac = solvable as f64 / seeds as f64;
        let expected = (p / 0.7).min(1.0);
        assert!((frac - expected).abs() < 0.08, "frac={frac} expected ~{expected}");
    }

    #[test]
    fn serial_tasks_never_sequential_fallback() {
        let m = SyntheticModel::by_name("CodeLlama-7B").unwrap();
        for seed in 0..50 {
            for k in m.sample_n(task(ExecutionModel::Serial), 0.8, 20, seed) {
                assert!(!matches!(k, CandidateKind::SequentialFallback));
            }
        }
    }

    #[test]
    fn zoo_parallel_targets_match_paper_statements() {
        let zoo = SyntheticModel::zoo();
        let rate = |name: &str| {
            let m = zoo.iter().find(|m| m.card().name == name).unwrap();
            m.calibration().mean_parallel_rate(m.is_small())
        };
        // GPT-3.5 leads; GPT-4 about two points behind (Fig. 2).
        assert!(rate("GPT-3.5") > rate("GPT-4"));
        // Phind leads the open models but trails the GPTs.
        assert!(rate("Phind-CodeLlama-V2") > rate("CodeLlama-34B"));
        assert!(rate("Phind-CodeLlama-V2") < rate("GPT-4"));
        // Non-Phind open models land in the paper's 10-19% band.
        for name in ["CodeLlama-7B", "CodeLlama-13B", "StarCoderBase", "CodeLlama-34B"] {
            let r = rate(name);
            assert!((0.09..=0.20).contains(&r), "{name}: {r}");
        }
    }

    #[test]
    fn cold_sampling_collapses_more_often() {
        let m = SyntheticModel::by_name("GPT-4").unwrap();
        let t = task(ExecutionModel::Mpi);
        let collapsed = |temp: f64| {
            (0..200u64)
                .filter(|&s| {
                    let v = m.sample_n(t, temp, 20, s);
                    v.iter().all(|k| *k == v[0])
                })
                .count()
        };
        let cold = collapsed(0.2);
        let hot = collapsed(0.8);
        assert!(cold > hot, "cold={cold} hot={hot}");
    }

    #[test]
    fn zoo_never_emits_flaky_but_custom_models_can() {
        for m in SyntheticModel::zoo() {
            for seed in 0..20 {
                for k in m.sample_n(task(ExecutionModel::OpenMp), 0.8, 20, seed) {
                    assert!(!matches!(k, CandidateKind::Flaky), "{} emitted flaky", m.card().name);
                }
            }
        }
        let base = SyntheticModel::by_name("CodeLlama-7B").unwrap();
        let mut calib = base.calibration().clone();
        // All failure mass on the flaky slot.
        calib.failure_mix = [0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0];
        let m = SyntheticModel::custom(base.card().clone(), calib, true);
        let flaky = (0..20u64)
            .flat_map(|seed| m.sample_n(task(ExecutionModel::Mpi), 0.8, 20, seed))
            .filter(|k| matches!(k, CandidateKind::Flaky))
            .count();
        assert!(flaky > 0, "custom flaky mass must surface in the stream");
    }

    #[test]
    fn zero_chaos_is_stream_identical_and_nonzero_surfaces_defects() {
        let base = SyntheticModel::by_name("CodeLlama-7B").unwrap();
        let t = task(ExecutionModel::Mpi);
        // (0, 0) chaos must not perturb a single draw.
        let chaosless = base.clone().with_chaos(0.0, 0.0);
        for seed in 0..20u64 {
            assert_eq!(base.sample_n(t, 0.8, 20, seed), chaosless.sample_n(t, 0.8, 20, seed));
        }
        // Heavy chaos mass must surface both containment kinds.
        let chaotic = base.with_chaos(5.0, 5.0);
        let kinds: Vec<_> =
            (0..40u64).flat_map(|seed| chaotic.sample_n(t, 0.8, 20, seed)).collect();
        assert!(kinds.iter().any(|k| matches!(k, CandidateKind::Deadlock)));
        assert!(kinds.iter().any(|k| matches!(k, CandidateKind::StackHog)));
    }

    #[test]
    fn gpu_exec_models_sampled_distinctly() {
        // CUDA and HIP have close but distinct rates.
        let m = SyntheticModel::by_name("GPT-3.5").unwrap();
        let c = m.p_correct(task(ExecutionModel::Cuda));
        let h = m.p_correct(task(ExecutionModel::Hip));
        assert!(c > h);
        assert!((c - h) < 0.05);
    }
}
