//! Correctness-rate calibration tables.
//!
//! The absolute `pass@1` levels per (model, execution model) and the
//! problem-type difficulty multipliers are *inputs* transcribed from the
//! paper's reported aggregates and figure shapes (Figures 1–3):
//!
//! * every model does best on Serial, then OpenMP, then Kokkos (large
//!   models) or CUDA/HIP, with MPI and MPI+OpenMP worst;
//! * small models do disproportionately badly on Kokkos (little Kokkos
//!   in training data);
//! * structured/dense problem types are easiest, sparse/unstructured
//!   hardest, with transform best and sparse linear algebra worst.

use pcg_core::{ExecutionModel, ProblemType, PromptVariant, TaskId};
use serde::{Deserialize, Serialize};

/// Per-model calibration: base rates and behavioral knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// `pass@1`-like base rate per execution model (before the
    /// problem-type adjustment), indexed by [`ExecutionModel::index`].
    pub exec_rate: [f64; 7],
    /// Probability that a *correct* sample is efficiently parallel.
    pub efficient_share: f64,
    /// Probability (at temperature 0.2) that all samples for a task
    /// collapse to a single output — the paper's observation about
    /// CodeLlama-34B and GPT-4 "confidence".
    pub collapse_prob: f64,
    /// Failure-mode mix `[build, wrong, sequential, crash, timeout,
    /// flaky, deadlock, stackhog]` (normalized internally; `sequential`
    /// mass folds into `wrong` for serial tasks, where there is no
    /// parallel API to skip). The `flaky`, `deadlock`, and `stackhog`
    /// slots are zero for the calibrated zoo — the paper scores single
    /// runs and does not decompose hangs — and are exposed for
    /// flakiness/containment studies via [`crate::SyntheticModel::custom`]
    /// and [`crate::SyntheticModel::with_chaos`].
    pub failure_mix: [f64; 8],
}

/// Problem-type difficulty multiplier (Figure 3 shape), shared across
/// models, with a bonus used only by the small open models whose graph
/// performance is disproportionately good in the paper.
pub fn ptype_multiplier(ptype: ProblemType, small_model: bool) -> f64 {
    
    match ptype {
        ProblemType::Transform => 1.75,
        ProblemType::Reduce => 1.45,
        ProblemType::Search => 1.40,
        ProblemType::Histogram => 1.20,
        ProblemType::Stencil => 1.15,
        ProblemType::DenseLinearAlgebra => 1.10,
        ProblemType::Graph => {
            if small_model {
                1.15
            } else {
                0.95
            }
        }
        ProblemType::Sort => 0.70,
        ProblemType::Scan => 0.68,
        ProblemType::FourierTransform => 0.60,
        ProblemType::Geometry => 0.58,
        ProblemType::SparseLinearAlgebra => 0.42,
    }
}

impl Calibration {
    /// Probability that one generated sample for `task` is correct.
    pub fn p_correct(&self, task: TaskId, small_model: bool) -> f64 {
        let base = self.exec_rate[task.model.index()];
        (base * ptype_multiplier(task.problem.ptype, small_model)).clamp(0.01, 0.97)
    }

    /// Average `p_correct` over the parallel tasks (sanity metric used
    /// in tests against the paper's reported parallel pass@1).
    pub fn mean_parallel_rate(&self, small_model: bool) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for task in pcg_core::task::all_tasks() {
            if task.model.is_parallel() {
                total += self.p_correct(task, small_model);
                count += 1;
            }
        }
        total / count as f64
    }

    /// The calibration for this model under a prompt tier.
    ///
    /// [`PromptVariant::Expert`] — the default, the paper's engineered
    /// prompt — is the **identity**: `self` is returned with zero
    /// arithmetic applied, so default-variant sample streams are
    /// byte-identical to the pre-variant harness. The other tiers apply
    /// deterministic deltas shaped by the related-work findings:
    ///
    /// * **Naive** (no instruction, no header): correctness drops hard
    ///   and the failure mass shifts toward sequential fallback — with
    ///   no "compute in parallel" sentence, models mostly emit serial
    ///   code.
    /// * **Student** (instruction, no header): moderate drop, with
    ///   extra build failures (the paper found the include/use header
    ///   load-bearing for using the right programming model's API).
    /// * **RagAugmented** (expert + retrieved reference): correctness
    ///   and parallel quality improve, and mode collapse eases — the
    ///   reference anchors the output distribution.
    pub fn with_variant(self, variant: PromptVariant) -> Calibration {
        match variant {
            PromptVariant::Expert => self,
            PromptVariant::Naive => {
                let mut c = self;
                for r in &mut c.exec_rate {
                    *r *= 0.72;
                }
                c.efficient_share *= 0.90;
                c.failure_mix[2] += 0.25;
                c
            }
            PromptVariant::Student => {
                let mut c = self;
                for r in &mut c.exec_rate {
                    *r *= 0.88;
                }
                c.failure_mix[0] += 0.10;
                c
            }
            PromptVariant::RagAugmented => {
                let mut c = self;
                for r in &mut c.exec_rate {
                    *r *= 1.18;
                }
                c.efficient_share = (c.efficient_share * 1.10).min(0.95);
                c.collapse_prob *= 0.90;
                c
            }
        }
    }

    /// Average `p_correct` over serial tasks.
    pub fn mean_serial_rate(&self, small_model: bool) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for task in pcg_core::task::all_tasks() {
            if !task.model.is_parallel() {
                total += self.p_correct(task, small_model);
                count += 1;
            }
        }
        total / count as f64
    }
}

/// Build the exec-rate row from a serial rate and a parallel-average
/// target, distributing the parallel mass per the paper's ordering:
/// OpenMP 1.55x, Kokkos (kokkos_factor), CUDA 1.05x, HIP 1.0x,
/// MPI 0.5x, hybrid 0.45x of the parallel mean (pre-normalized).
pub fn exec_rates(serial: f64, parallel_mean: f64, kokkos_factor: f64) -> [f64; 7] {
    let raw = [1.55, kokkos_factor, 1.05, 1.0, 0.5, 0.45];
    let raw_mean: f64 = raw.iter().sum::<f64>() / raw.len() as f64;
    let mut rates = [0.0; 7];
    rates[ExecutionModel::Serial.index()] = serial;
    for (i, m) in ExecutionModel::PARALLEL.iter().enumerate() {
        // Order in PARALLEL: OpenMp, Kokkos, Mpi, MpiOpenMp, Cuda, Hip —
        // map our ordering accordingly.
        let factor = match m {
            ExecutionModel::OpenMp => raw[0],
            ExecutionModel::Kokkos => raw[1],
            ExecutionModel::Cuda => raw[2],
            ExecutionModel::Hip => raw[3],
            ExecutionModel::Mpi => raw[4],
            ExecutionModel::MpiOpenMp => raw[5],
            ExecutionModel::Serial => unreachable!(),
        };
        let _ = i;
        rates[m.index()] = parallel_mean * factor / raw_mean;
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_rates_preserve_parallel_mean() {
        let rates = exec_rates(0.8, 0.4, 1.3);
        let par_mean: f64 =
            ExecutionModel::PARALLEL.iter().map(|m| rates[m.index()]).sum::<f64>() / 6.0;
        assert!((par_mean - 0.4).abs() < 1e-12);
        assert_eq!(rates[0], 0.8);
    }

    #[test]
    fn exec_ordering_matches_paper() {
        let r = exec_rates(0.8, 0.4, 1.3);
        assert!(r[ExecutionModel::Serial.index()] > r[ExecutionModel::OpenMp.index()]);
        assert!(r[ExecutionModel::OpenMp.index()] > r[ExecutionModel::Kokkos.index()]);
        assert!(r[ExecutionModel::Kokkos.index()] > r[ExecutionModel::Cuda.index()]);
        assert!(r[ExecutionModel::Cuda.index()] > r[ExecutionModel::Mpi.index()]);
        assert!(r[ExecutionModel::Mpi.index()] > r[ExecutionModel::MpiOpenMp.index()]);
    }

    #[test]
    fn transform_easiest_sparse_hardest() {
        let mults: Vec<f64> =
            ProblemType::ALL.iter().map(|&t| ptype_multiplier(t, false)).collect();
        let max = mults.iter().cloned().fold(f64::MIN, f64::max);
        let min = mults.iter().cloned().fold(f64::MAX, f64::min);
        assert_eq!(ptype_multiplier(ProblemType::Transform, false), max);
        assert_eq!(ptype_multiplier(ProblemType::SparseLinearAlgebra, false), min);
    }

    #[test]
    fn variant_deltas_order_correctness_and_expert_is_identity() {
        let base = Calibration {
            exec_rate: exec_rates(0.8, 0.4, 1.3),
            efficient_share: 0.7,
            collapse_prob: 0.2,
            failure_mix: [0.2, 0.4, 0.15, 0.13, 0.12, 0.0, 0.0, 0.0],
        };
        assert_eq!(
            base.clone().with_variant(PromptVariant::Expert),
            base,
            "the default variant must be a bit-exact identity"
        );
        let rate = |v: PromptVariant| base.clone().with_variant(v).mean_parallel_rate(false);
        let naive = rate(PromptVariant::Naive);
        let student = rate(PromptVariant::Student);
        let expert = rate(PromptVariant::Expert);
        let rag = rate(PromptVariant::RagAugmented);
        assert!(
            naive < student && student < expert && expert < rag,
            "tiers must order correctness: {naive} {student} {expert} {rag}"
        );
        // Naive shifts failure mass toward sequential fallback.
        let n = base.clone().with_variant(PromptVariant::Naive);
        assert!(n.failure_mix[2] > base.failure_mix[2]);
        // Student adds build failures.
        let s = base.clone().with_variant(PromptVariant::Student);
        assert!(s.failure_mix[0] > base.failure_mix[0]);
        // RAG improves parallel quality and eases collapse.
        let r = base.clone().with_variant(PromptVariant::RagAugmented);
        assert!(r.efficient_share > base.efficient_share);
        assert!(r.collapse_prob < base.collapse_prob);
    }

    #[test]
    fn small_models_relatively_better_at_graph() {
        assert!(
            ptype_multiplier(ProblemType::Graph, true)
                > ptype_multiplier(ProblemType::Graph, false)
        );
    }
}
