//! Pluggable candidate provenance: the [`CandidateSource`] trait.
//!
//! The harness coordinator scores *cells* — (model row × task) — and
//! does not care where candidate pools come from. A `CandidateSource`
//! answers exactly the three questions evaluation asks:
//!
//! 1. what model rows exist ([`CandidateSource::model_names`] — these
//!    strings become the plan's model axis, cell ids, record labels,
//!    and priors keys),
//! 2. whether a row joins the high-temperature set
//!    ([`CandidateSource::weights_available`]),
//! 3. the candidate pool for one `(row, task)` under a
//!    [`SampleSpec`] ([`CandidateSource::sample`]).
//!
//! **Determinism contract:** `sample` must be a pure function of
//! `(row index, task, spec)` — never of wall-clock time, call order,
//! worker identity, or external state. Everything downstream (resume,
//! sharding, stealing, merge) assumes a cell can be re-evaluated
//! anywhere, any time, to the same bytes.
//!
//! **Hash contract:** [`CandidateSource::config_salt`] is folded into
//! the run's config hash. It must be empty exactly when the source is
//! the default synthetic path (so old journals and caches replay), and
//! must change whenever the pools a source would return change (so a
//! resumed run can never splice cells from different pools).
//!
//! Three families of implementation ship here:
//!
//! * slices/vectors of [`SyntheticModel`] — the legacy zoo path, bare
//!   card names, byte-identical to the pre-trait harness;
//! * [`SyntheticSource`] — the zoo crossed with a
//!   [`PromptVariant`] list, one calibrated row per (model, variant);
//! * [`crate::ReplaySource`] — dumped candidate pools re-scored from a
//!   directory (in `replay.rs`).

use crate::SyntheticModel;
use pcg_core::prompt::row_label;
use pcg_core::{CandidateKind, PromptVariant, TaskId};

/// Everything one sampling request depends on. Bundled so the trait
/// stays stable as knobs accrue; the chaos rates ride along because
/// defect injection perturbs the *pool*, which is source territory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleSpec {
    /// Sampling temperature.
    pub temperature: f64,
    /// Number of samples requested.
    pub n: usize,
    /// The run's global seed.
    pub seed: u64,
    /// Chaos-injection weight for `Deadlock` defects (0 = exact no-op).
    pub deadlock_rate: f64,
    /// Chaos-injection weight for `StackHog` defects (0 = exact no-op).
    pub stack_hog_rate: f64,
}

impl SampleSpec {
    /// A spec with no chaos injection.
    pub fn new(temperature: f64, n: usize, seed: u64) -> SampleSpec {
        SampleSpec { temperature, n, seed, deadlock_rate: 0.0, stack_hog_rate: 0.0 }
    }
}

/// A deterministic provider of candidate pools; see the module docs
/// for the determinism and hash contracts.
pub trait CandidateSource {
    /// The model-row labels, in grid-enumeration order. These strings
    /// are load-bearing identity: they key cell ids, journal entries,
    /// record rows, priors lookups, and figure bins.
    fn model_names(&self) -> Vec<String>;

    /// Whether row `model` participates in the high-temperature
    /// (200-sample) set; the paper excludes closed-weight models.
    fn weights_available(&self, model: usize) -> bool;

    /// The candidate pool for `(row, task)` under `spec`. Must return
    /// exactly `spec.n` kinds and be a pure function of its arguments.
    fn sample(&self, model: usize, task: TaskId, spec: &SampleSpec) -> Vec<CandidateKind>;

    /// Bytes folded into the run's config hash. Empty (the default)
    /// means "the default synthetic path" and leaves the hash — and
    /// therefore every cell id, journal, and cache — unchanged.
    fn config_salt(&self) -> Vec<u8> {
        Vec::new()
    }
}

impl CandidateSource for [SyntheticModel] {
    fn model_names(&self) -> Vec<String> {
        self.iter().map(|m| m.card().name.to_string()).collect()
    }

    fn weights_available(&self, model: usize) -> bool {
        self[model].card().weights_available
    }

    fn sample(&self, model: usize, task: TaskId, spec: &SampleSpec) -> Vec<CandidateKind> {
        self[model]
            .clone()
            .with_chaos(spec.deadlock_rate, spec.stack_hog_rate)
            .sample_n(task, spec.temperature, spec.n, spec.seed)
    }
}

impl<const N: usize> CandidateSource for [SyntheticModel; N] {
    fn model_names(&self) -> Vec<String> {
        self.as_slice().model_names()
    }

    fn weights_available(&self, model: usize) -> bool {
        self.as_slice().weights_available(model)
    }

    fn sample(&self, model: usize, task: TaskId, spec: &SampleSpec) -> Vec<CandidateKind> {
        self.as_slice().sample(model, task, spec)
    }
}

impl CandidateSource for Vec<SyntheticModel> {
    fn model_names(&self) -> Vec<String> {
        self.as_slice().model_names()
    }

    fn weights_available(&self, model: usize) -> bool {
        self.as_slice().weights_available(model)
    }

    fn sample(&self, model: usize, task: TaskId, spec: &SampleSpec) -> Vec<CandidateKind> {
        self.as_slice().sample(model, task, spec)
    }
}

/// One row of a [`SyntheticSource`]: a zoo model under one prompt tier.
#[derive(Debug, Clone)]
struct SyntheticRow {
    /// The model with its calibration already adjusted for the variant
    /// (identity for the default tier).
    model: SyntheticModel,
    /// The row label: bare card name for the default variant,
    /// `name@variant` otherwise. Also keys the RNG stream.
    label: String,
}

/// The synthetic zoo crossed with a prompt-variant list.
///
/// With `variants == [PromptVariant::DEFAULT]` this is row-for-row and
/// byte-for-byte the legacy zoo: bare labels, identity calibration,
/// the same RNG streams, an empty config salt. Additional variants add
/// rows labeled `name@variant` whose calibrations carry the tier's
/// correctness deltas and whose sample streams are keyed by the full
/// row label (independent draws per tier, like re-prompting a model).
#[derive(Debug, Clone)]
pub struct SyntheticSource {
    rows: Vec<SyntheticRow>,
}

impl SyntheticSource {
    /// Cross `models` with `variants` (model-major: every variant of a
    /// model is adjacent). Panics on an empty or duplicated variant
    /// list — a silent dedup would change the grid the caller asked for.
    pub fn new(models: Vec<SyntheticModel>, variants: &[PromptVariant]) -> SyntheticSource {
        assert!(!variants.is_empty(), "at least one prompt variant required");
        let mut seen = variants.to_vec();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), variants.len(), "duplicate prompt variants: {variants:?}");
        let rows = models
            .into_iter()
            .flat_map(|m| {
                variants.iter().map(move |&v| {
                    let label = row_label(m.card().name, v);
                    let model = SyntheticModel::custom(
                        m.card().clone(),
                        m.calibration().clone().with_variant(v),
                        m.is_small(),
                    );
                    SyntheticRow { model, label }
                })
            })
            .collect();
        SyntheticSource { rows }
    }

    /// The full zoo under `variants`.
    pub fn zoo(variants: &[PromptVariant]) -> SyntheticSource {
        SyntheticSource::new(SyntheticModel::zoo(), variants)
    }
}

impl CandidateSource for SyntheticSource {
    fn model_names(&self) -> Vec<String> {
        self.rows.iter().map(|r| r.label.clone()).collect()
    }

    fn weights_available(&self, model: usize) -> bool {
        self.rows[model].model.card().weights_available
    }

    fn sample(&self, model: usize, task: TaskId, spec: &SampleSpec) -> Vec<CandidateKind> {
        let row = &self.rows[model];
        row.model
            .clone()
            .with_chaos(spec.deadlock_rate, spec.stack_hog_rate)
            .sample_n_as(&row.label, task, spec.temperature, spec.n, spec.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcg_core::{ExecutionModel, ProblemId, ProblemType};

    fn task() -> TaskId {
        ProblemId::new(ProblemType::Transform, 0).task(ExecutionModel::OpenMp)
    }

    #[test]
    fn slice_impl_matches_direct_sampling_exactly() {
        let zoo = SyntheticModel::zoo();
        let spec = SampleSpec::new(0.2, 20, 42);
        for (i, m) in zoo.iter().enumerate() {
            let direct = m.sample_n(task(), spec.temperature, spec.n, spec.seed);
            assert_eq!(zoo.as_slice().sample(i, task(), &spec), direct);
            assert_eq!(zoo.sample(i, task(), &spec), direct, "Vec impl");
        }
        assert_eq!(
            zoo.as_slice().model_names(),
            zoo.iter().map(|m| m.card().name.to_string()).collect::<Vec<_>>()
        );
        assert!(zoo.as_slice().config_salt().is_empty());
    }

    #[test]
    fn default_variant_source_is_the_legacy_zoo() {
        let zoo = SyntheticModel::zoo();
        let src = SyntheticSource::zoo(&[PromptVariant::DEFAULT]);
        assert_eq!(src.model_names(), zoo.as_slice().model_names());
        assert!(src.config_salt().is_empty());
        let spec = SampleSpec::new(0.8, 10, 7);
        for i in 0..zoo.len() {
            assert_eq!(
                src.sample(i, task(), &spec),
                zoo.as_slice().sample(i, task(), &spec),
                "default-variant streams must be byte-identical to the zoo"
            );
            assert_eq!(src.weights_available(i), zoo.as_slice().weights_available(i));
        }
    }

    #[test]
    fn variant_rows_enumerate_model_major_with_qualified_labels() {
        let variants =
            [PromptVariant::Naive, PromptVariant::Expert, PromptVariant::RagAugmented];
        let src = SyntheticSource::new(
            vec![
                SyntheticModel::by_name("GPT-4").unwrap(),
                SyntheticModel::by_name("CodeLlama-7B").unwrap(),
            ],
            &variants,
        );
        assert_eq!(
            src.model_names(),
            vec![
                "GPT-4@naive",
                "GPT-4",
                "GPT-4@rag",
                "CodeLlama-7B@naive",
                "CodeLlama-7B",
                "CodeLlama-7B@rag",
            ]
        );
        // weights flags follow the underlying model, not the variant.
        assert!(!src.weights_available(0));
        assert!(src.weights_available(3));
    }

    #[test]
    fn variant_rows_sample_distinct_deterministic_streams() {
        let variants = [PromptVariant::Naive, PromptVariant::Expert];
        let src = SyntheticSource::new(
            vec![SyntheticModel::by_name("GPT-3.5").unwrap()],
            &variants,
        );
        let spec = SampleSpec::new(0.8, 40, 11);
        let naive = src.sample(0, task(), &spec);
        let expert = src.sample(1, task(), &spec);
        assert_eq!(naive, src.sample(0, task(), &spec), "deterministic");
        assert_ne!(naive, expert, "tiers are independent streams");
        // Across many seeds, the naive tier must be measurably worse.
        let correct = |row: usize| -> usize {
            (0..200u64)
                .flat_map(|s| src.sample(row, task(), &SampleSpec::new(0.8, 10, s)))
                .filter(|k| matches!(k, CandidateKind::Correct(_)))
                .count()
        };
        let n = correct(0);
        let e = correct(1);
        assert!(n < e, "naive {n} must trail expert {e}");
    }

    #[test]
    #[should_panic(expected = "duplicate prompt variants")]
    fn duplicate_variants_rejected() {
        SyntheticSource::zoo(&[PromptVariant::Expert, PromptVariant::Expert]);
    }
}
