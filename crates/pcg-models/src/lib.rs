//! # pcg-models
//!
//! The synthetic LLM zoo (paper §5, Table 2).
//!
//! Real LLM inference is unavailable offline, so each paper model is
//! reproduced as a **calibrated candidate generator**: for every task it
//! samples a [`pcg_core::CandidateKind`] — an actual runnable artifact in
//! `pcg-problems` — with per-(model, execution-model, problem-type)
//! correctness probabilities read off the paper's Figures 1–3, a defect
//! mix over the paper's observed failure modes, a quality mix governing
//! parallel efficiency, and a temperature-dependent *mode collapse*
//! behavior (the paper notes CodeLlama-34B and GPT-4 often emit the same
//! output for all 20 samples).
//!
//! Everything downstream of generation — building, running, validating,
//! timing, metric estimation — operates on these real artifacts, so the
//! harness pipeline is exercised end to end. `EXPERIMENTS.md` records
//! which numbers are calibration inputs versus measured outputs.
//!
//! Candidate provenance is pluggable: the harness consumes any
//! [`CandidateSource`] (the synthetic zoo — bare or crossed with a
//! [`pcg_core::PromptVariant`] list via [`SyntheticSource`] — or a
//! dumped pool replayed from a directory via [`ReplaySource`]).

mod calibration;
mod card;
mod replay;
mod sampler;
mod source;

pub use calibration::Calibration;
pub use card::ModelCard;
pub use replay::{dump_pool, ReplaySource};
pub use sampler::SyntheticModel;
pub use source::{CandidateSource, SampleSpec, SyntheticSource};

/// The seven paper models, in Table 2 order.
pub fn zoo() -> Vec<SyntheticModel> {
    SyntheticModel::zoo()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_has_seven_models() {
        let z = zoo();
        assert_eq!(z.len(), 7);
        let names: Vec<_> = z.iter().map(|m| m.card().name).collect();
        assert!(names.contains(&"GPT-4"));
        assert!(names.contains(&"CodeLlama-7B"));
    }
}
