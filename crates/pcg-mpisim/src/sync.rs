//! A counting semaphore (compute-token pool).
//!
//! The simulator caps the number of rank threads *computing* at once to
//! the physical core count, so that wall-clock measurements of compute
//! segments are not distorted by oversubscription when simulating
//! hundreds of ranks. Ranks blocked in `recv`/collectives hold no token.

use parking_lot::{Condvar, Mutex};
use pcg_core::cancel::{self, CancelToken};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// How often a cancellable wait re-checks its token.
pub(crate) const CANCEL_TICK: Duration = Duration::from_millis(2);

/// A simple fair-enough counting semaphore with abort support.
pub struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
    aborted: AtomicBool,
    /// The launching candidate's cancel token, captured at construction
    /// (worlds build their semaphore on the candidate thread). When set,
    /// waits tick so a killed candidate's ranks cannot block forever.
    cancel: Option<CancelToken>,
}

impl Semaphore {
    /// Semaphore with `n` permits (`n >= 1`).
    pub fn new(n: usize) -> Semaphore {
        assert!(n > 0, "semaphore needs at least one permit");
        Semaphore {
            permits: Mutex::new(n),
            cv: Condvar::new(),
            aborted: AtomicBool::new(false),
            cancel: cancel::current_token(),
        }
    }

    /// Block until a permit is available, then take it. Returns `false`
    /// if the semaphore was aborted while waiting; unwinds with the
    /// cancellation marker if the owning candidate is killed.
    pub fn acquire(&self) -> bool {
        let mut permits = self.permits.lock();
        loop {
            if let Some(t) = &self.cancel {
                t.check();
            }
            if self.aborted.load(Ordering::Acquire) {
                return false;
            }
            if *permits > 0 {
                *permits -= 1;
                return true;
            }
            match &self.cancel {
                Some(_) => {
                    let _ = self.cv.wait_for(&mut permits, CANCEL_TICK);
                }
                None => self.cv.wait(&mut permits),
            }
        }
    }

    /// Non-blocking acquire: take a permit if one is free. Returns
    /// `false` when none are free *or* the semaphore is aborted — the
    /// multiplexed caller distinguishes via [`Semaphore::is_aborted`].
    pub fn try_acquire(&self) -> bool {
        if self.aborted.load(Ordering::Acquire) {
            return false;
        }
        let mut permits = self.permits.lock();
        if *permits > 0 {
            *permits -= 1;
            true
        } else {
            false
        }
    }

    /// Current free-permit count (scheduler wakeup re-check).
    pub fn available(&self) -> usize {
        *self.permits.lock()
    }

    /// Return a permit.
    pub fn release(&self) {
        let mut permits = self.permits.lock();
        *permits += 1;
        drop(permits);
        self.cv.notify_one();
    }

    /// Wake all waiters and make every future acquire fail.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
        let _guard = self.permits.lock();
        self.cv.notify_all();
    }

    /// Whether [`Semaphore::abort`] has been called.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn caps_concurrency() {
        let sem = Semaphore::new(2);
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..50 {
                        assert!(sem.acquire());
                        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::hint::black_box(());
                        live.fetch_sub(1, Ordering::SeqCst);
                        sem.release();
                    }
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn abort_unblocks_waiters() {
        let sem = Semaphore::new(1);
        assert!(sem.acquire());
        std::thread::scope(|s| {
            let h = s.spawn(|| sem.acquire());
            std::thread::sleep(std::time::Duration::from_millis(20));
            sem.abort();
            assert!(!h.join().unwrap());
        });
        assert!(sem.is_aborted());
        assert!(!sem.acquire());
    }

    #[test]
    #[should_panic(expected = "at least one permit")]
    fn zero_permits_rejected() {
        let _ = Semaphore::new(0);
    }
}
