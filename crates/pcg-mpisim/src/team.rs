//! A persistent team of threads for warm `World` reuse.
//!
//! Cold [`crate::World::run`] spawns its execution threads per run —
//! for the paper's 512-rank headline configuration that is hundreds of
//! spawns *per candidate run*, the single largest fixed cost in the
//! evaluation hot path. A [`RankTeam`] keeps those threads alive
//! between runs: [`crate::World::run_on`] publishes the per-rank body
//! to the team exactly like `pcg_shmem::Pool` publishes a region, and
//! the caller blocks until the run completes (which is what makes the
//! lifetime erasure sound).
//!
//! A team comes in the same two execution styles as a cold run, fixed
//! at construction by [`crate::sched::should_multiplex`]:
//!
//! * **per-rank** — one persistent OS thread per rank, each running the
//!   rank body directly (the original warm path);
//! * **multiplexed** — `sched::workers()` persistent worker threads,
//!   each running the fiber scheduler loop; ranks run as fibers. This
//!   is what makes MPI-256/512 warm-leasable: the parked footprint is
//!   the worker count, not the rank count.
//!
//! Per-run state (mailboxes, cost model, compute-token semaphore, the
//! scheduler) lives in `WorldShared`, rebuilt per `run_on` call, so a
//! reused team starts every run from a clean slate. The launching
//! candidate's usage sink and cancel token travel with each published
//! job and are installed on every team thread before any candidate code
//! runs, so attribution and kill delivery match the cold path exactly.

use crate::sched::{self, worker_loop};
use crate::world::WorldShared;
use parking_lot::{Condvar, Mutex};
use pcg_core::{cancel, usage};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type RankFn<'a> = dyn Fn(usize) + Sync + 'a;

/// Per-run join state plus the candidate identity to install on each
/// team thread. Lives on the launching thread's stack for the duration
/// of the run.
struct RunState {
    remaining: AtomicUsize,
    sink: Option<Arc<usage::Sink>>,
    token: Option<cancel::CancelToken>,
}

/// A lifetime-erased pointer set to the rank body, the world state, and
/// the run state. Only dereferenced between publish and the countdown
/// the caller blocks on. `shared` is null on per-rank teams (their
/// threads never need it).
#[derive(Clone, Copy)]
struct TeamJob {
    f: *const RankFn<'static>,
    shared: *const WorldShared,
    run: *const RunState,
}
// SAFETY: the pointers target data the launching thread keeps alive
// until every team thread has decremented the countdown; team threads
// never touch them afterwards.
unsafe impl Send for TeamJob {}

struct Slot {
    generation: u64,
    job: Option<TeamJob>,
}

struct TeamShared {
    slot: Mutex<Slot>,
    work_ready: Condvar,
    finish_lock: Mutex<()>,
    finished: Condvar,
    shutdown: AtomicBool,
}

fn new_team_shared() -> Arc<TeamShared> {
    Arc::new(TeamShared {
        slot: Mutex::new(Slot { generation: 0, job: None }),
        work_ready: Condvar::new(),
        finish_lock: Mutex::new(()),
        finished: Condvar::new(),
        shutdown: AtomicBool::new(false),
    })
}

/// A persistent set of threads that can host successive
/// [`crate::World::run_on`] executions without respawning.
pub struct RankTeam {
    shared: Arc<TeamShared>,
    /// World size this team serves (= rank count, not thread count).
    size: usize,
    /// `Some(W)` iff this team multiplexes ranks onto `W` workers.
    mux_workers: Option<usize>,
    workers: Vec<JoinHandle<()>>,
}

impl RankTeam {
    /// Spawn a team serving worlds of `size` ranks. Panics if
    /// `size == 0`. Whether the team is per-rank or multiplexed is
    /// decided here, by the current scheduler policy.
    pub fn new(size: usize) -> RankTeam {
        assert!(size > 0, "rank team needs at least one rank");
        let mux_workers = sched::should_multiplex(size).then(sched::workers);
        let threads = mux_workers.unwrap_or(size);
        let shared = new_team_shared();
        let workers = (0..threads)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                let mux = mux_workers.is_some();
                std::thread::Builder::new()
                    .name(format!("mpisim-team-{idx}"))
                    // Match the cold path's reduced rank-thread stacks:
                    // many-rank worlds must stay cheap.
                    .stack_size(1 << 21)
                    .spawn(move || team_loop(shared, idx, mux))
                    .expect("failed to spawn team thread")
            })
            .collect();
        RankTeam { shared, size, mux_workers, workers }
    }

    /// Number of ranks this team serves.
    pub fn size(&self) -> usize {
        self.size
    }

    /// OS threads this team keeps parked — the lease layer's budgeting
    /// quantity. Equals `size()` for per-rank teams, the worker count
    /// for multiplexed ones.
    pub fn os_threads(&self) -> usize {
        self.workers.len()
    }

    /// `Some(worker count)` iff this team multiplexes.
    pub(crate) fn mux_workers(&self) -> Option<usize> {
        self.mux_workers
    }

    /// Run `f(rank)` once per rank, blocking until the run completes.
    /// The caller does not participate (unlike a shmem pool's master
    /// thread): MPI rank 0 is just another simulated rank, mirroring
    /// the cold path. `shared` must carry a scheduler iff this team is
    /// multiplexed (guaranteed by `World::run_impl`, which builds it
    /// from `mux_workers()`).
    pub(crate) fn run(&self, shared: &WorldShared, f: &(dyn Fn(usize) + Sync)) {
        debug_assert_eq!(shared.is_multiplexed(), self.mux_workers.is_some());
        let run = RunState {
            remaining: AtomicUsize::new(self.workers.len()),
            sink: usage::current_sink(),
            token: cancel::current_token(),
        };
        // SAFETY: we erase the lifetimes; `run` does not return until
        // `run.remaining` hits zero, i.e. every team thread is done
        // with all three pointers. See `TeamJob` safety comment.
        let job = TeamJob {
            f: unsafe {
                std::mem::transmute::<*const RankFn<'_>, *const RankFn<'static>>(
                    f as *const RankFn<'_>,
                )
            },
            shared: if self.mux_workers.is_some() {
                shared as *const WorldShared
            } else {
                std::ptr::null()
            },
            run: &run as *const RunState,
        };
        {
            let mut slot = self.shared.slot.lock();
            slot.generation += 1;
            slot.job = Some(job);
        }
        self.shared.work_ready.notify_all();

        let mut guard = self.shared.finish_lock.lock();
        while run.remaining.load(Ordering::Acquire) != 0 {
            self.shared.finished.wait(&mut guard);
        }
    }
}

impl Drop for RankTeam {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let mut slot = self.shared.slot.lock();
            slot.generation += 1;
            slot.job = None;
        }
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The persistent thread body. On a per-rank team, `idx` is the rank
/// this thread plays every run; on a multiplexed team it is just a
/// worker id and the thread runs the fiber scheduler loop instead.
fn team_loop(shared: Arc<TeamShared>, idx: usize, mux: bool) {
    let mut last_generation = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock();
            while slot.generation == last_generation {
                shared.work_ready.wait(&mut slot);
            }
            last_generation = slot.generation;
            slot.job
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let Some(job) = job else { continue };
        // SAFETY: the launching thread blocks until we decrement
        // `remaining`, keeping the pointers alive for this scope.
        let (f, run) = unsafe { (&*job.f, &*job.run) };
        // Adopt the launching candidate's identity before running any of
        // its code — the warm equivalent of the cold path installing the
        // captured sink/token on each freshly spawned thread.
        usage::set_sink(run.sink.clone());
        cancel::set_token(run.token.clone());
        // The body handles candidate failures itself (abort cascades,
        // cancel markers); a stray unwind here is swallowed exactly like
        // the cold path's `let _ = handle.join()`.
        let _ = catch_unwind(AssertUnwindSafe(|| {
            if mux {
                // SAFETY: `shared` outlives the run like `f`/`run` do.
                let world = unsafe { &*job.shared };
                worker_loop(world, f);
            } else {
                f(idx);
            }
        }));
        // Signal completion; after this we must not touch the job.
        let was = run.remaining.fetch_sub(1, Ordering::AcqRel);
        if was == 1 {
            let _guard = shared.finish_lock.lock();
            shared.finished.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostModel, World};

    fn run_on_team(team: &RankTeam, size: usize, f: &(dyn Fn(usize) + Sync)) {
        // Drive through the World API so `shared` is built consistently
        // with the team's execution style.
        World::new(size)
            .with_cost_model(CostModel::deterministic())
            .run_on(team, |comm| f(comm.rank()))
            .unwrap();
    }

    #[test]
    fn every_rank_runs_each_generation() {
        let team = RankTeam::new(8);
        for _ in 0..5 {
            let mask = AtomicUsize::new(0);
            run_on_team(&team, 8, &|rank| {
                mask.fetch_or(1 << rank, Ordering::SeqCst);
            });
            assert_eq!(mask.load(Ordering::SeqCst), 0xff);
        }
    }

    #[test]
    fn team_survives_rank_panics() {
        let team = RankTeam::new(4);
        let _ = World::new(4)
            .with_cost_model(CostModel::deterministic())
            .run_on(&team, |comm| {
                if comm.rank() == 2 {
                    panic!("deliberate");
                }
            });
        let hits = AtomicUsize::new(0);
        run_on_team(&team, 4, &|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn ranks_adopt_the_launching_candidate() {
        use pcg_core::usage::UsageScope;
        use pcg_core::ExecutionModel;
        let team = RankTeam::new(4);
        let scope = UsageScope::begin();
        run_on_team(&team, 4, &|_| usage::record(ExecutionModel::Mpi));
        // At least one call per rank (the World itself records more).
        assert!(scope.finish().calls(ExecutionModel::Mpi) >= 4);
    }

    #[test]
    fn os_threads_reflect_execution_style() {
        let team = RankTeam::new(3);
        match team.mux_workers() {
            Some(w) => assert_eq!(team.os_threads(), w),
            None => assert_eq!(team.os_threads(), 3),
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = RankTeam::new(0);
    }
}
