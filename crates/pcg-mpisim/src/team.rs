//! A persistent team of rank threads for warm `World` reuse.
//!
//! Cold [`crate::World::run`] spawns one OS thread per rank per
//! execution — for the paper's 512-rank headline configuration that is
//! 512 spawns *per candidate run*, the single largest fixed cost in the
//! evaluation hot path. A [`RankTeam`] keeps those threads alive between
//! runs: [`crate::World::run_on`] publishes the per-rank body to the
//! team exactly like `pcg_shmem::Pool` publishes a region, and the
//! caller blocks until every rank has finished with the borrowed
//! closure (which is what makes the lifetime erasure sound).
//!
//! Per-run state (mailboxes, cost model, compute-token semaphore) lives
//! in `WorldShared`, rebuilt per `run_on` call, so a reused team starts
//! every run from a clean slate. The launching candidate's usage sink
//! and cancel token travel with each published job and are installed on
//! every rank thread before its body runs, so attribution and kill
//! delivery match the cold path exactly.

use parking_lot::{Condvar, Mutex};
use pcg_core::{cancel, usage};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type RankFn<'a> = dyn Fn(usize) + Sync + 'a;

/// Per-run join state plus the candidate identity to install on each
/// rank thread. Lives on the launching thread's stack for the duration
/// of the run.
struct RunState {
    remaining: AtomicUsize,
    sink: Option<Arc<usage::Sink>>,
    token: Option<cancel::CancelToken>,
}

/// A lifetime-erased pointer pair to the rank body and the run state.
/// Only dereferenced between publish and the countdown the caller
/// blocks on.
#[derive(Clone, Copy)]
struct TeamJob {
    f: *const RankFn<'static>,
    run: *const RunState,
}
// SAFETY: the pointers target data the launching thread keeps alive
// until every rank has decremented the countdown; rank threads never
// touch them afterwards.
unsafe impl Send for TeamJob {}

struct Slot {
    generation: u64,
    job: Option<TeamJob>,
}

struct TeamShared {
    slot: Mutex<Slot>,
    work_ready: Condvar,
    finish_lock: Mutex<()>,
    finished: Condvar,
    shutdown: AtomicBool,
}

/// A persistent set of `size` rank threads that can host successive
/// [`crate::World::run_on`] executions without respawning.
pub struct RankTeam {
    shared: Arc<TeamShared>,
    size: usize,
    workers: Vec<JoinHandle<()>>,
}

impl RankTeam {
    /// Spawn a team of `size` rank threads. Panics if `size == 0`.
    pub fn new(size: usize) -> RankTeam {
        assert!(size > 0, "rank team needs at least one rank");
        let shared = Arc::new(TeamShared {
            slot: Mutex::new(Slot { generation: 0, job: None }),
            work_ready: Condvar::new(),
            finish_lock: Mutex::new(()),
            finished: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..size)
            .map(|rank| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mpisim-team-{rank}"))
                    // Match the cold path's reduced rank-thread stacks:
                    // many-rank worlds must stay cheap.
                    .stack_size(1 << 21)
                    .spawn(move || rank_loop(shared, rank))
                    .expect("failed to spawn team rank thread")
            })
            .collect();
        RankTeam { shared, size, workers }
    }

    /// Number of rank threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run `f(rank)` once on every rank thread, blocking until all have
    /// finished. The caller does not participate (unlike a shmem pool's
    /// master thread): MPI rank 0 is just another team member, mirroring
    /// the cold path where every rank gets its own spawned thread.
    pub(crate) fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        let run = RunState {
            remaining: AtomicUsize::new(self.size),
            sink: usage::current_sink(),
            token: cancel::current_token(),
        };
        // SAFETY: we erase the lifetime; `run` does not return until
        // `run.remaining` hits zero, i.e. every rank thread is done with
        // both pointers. See `TeamJob` safety comment.
        let job = TeamJob {
            f: unsafe {
                std::mem::transmute::<*const RankFn<'_>, *const RankFn<'static>>(
                    f as *const RankFn<'_>,
                )
            },
            run: &run as *const RunState,
        };
        {
            let mut slot = self.shared.slot.lock();
            slot.generation += 1;
            slot.job = Some(job);
        }
        self.shared.work_ready.notify_all();

        let mut guard = self.shared.finish_lock.lock();
        while run.remaining.load(Ordering::Acquire) != 0 {
            self.shared.finished.wait(&mut guard);
        }
    }
}

impl Drop for RankTeam {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let mut slot = self.shared.slot.lock();
            slot.generation += 1;
            slot.job = None;
        }
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn rank_loop(shared: Arc<TeamShared>, rank: usize) {
    let mut last_generation = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock();
            while slot.generation == last_generation {
                shared.work_ready.wait(&mut slot);
            }
            last_generation = slot.generation;
            slot.job
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let Some(job) = job else { continue };
        // SAFETY: the launching thread blocks until we decrement
        // `remaining`, keeping both pointers alive for this scope.
        let (f, run) = unsafe { (&*job.f, &*job.run) };
        // Adopt the launching candidate's identity before running any of
        // its code — the warm equivalent of the cold path installing the
        // captured sink/token on each freshly spawned rank thread.
        usage::set_sink(run.sink.clone());
        cancel::set_token(run.token.clone());
        // The body handles candidate failures itself (abort cascades,
        // cancel markers); a stray unwind here is swallowed exactly like
        // the cold path's `let _ = handle.join()`.
        let _ = catch_unwind(AssertUnwindSafe(|| f(rank)));
        // Signal completion; after this we must not touch `f`/`run`.
        let was = run.remaining.fetch_sub(1, Ordering::AcqRel);
        if was == 1 {
            let _guard = shared.finish_lock.lock();
            shared.finished.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rank_runs_each_generation() {
        let team = RankTeam::new(8);
        for _ in 0..5 {
            let mask = AtomicUsize::new(0);
            team.run(&|rank| {
                mask.fetch_or(1 << rank, Ordering::SeqCst);
            });
            assert_eq!(mask.load(Ordering::SeqCst), 0xff);
        }
    }

    #[test]
    fn team_survives_rank_panics() {
        let team = RankTeam::new(4);
        team.run(&|rank| {
            if rank == 2 {
                panic!("deliberate");
            }
        });
        let hits = AtomicUsize::new(0);
        team.run(&|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn ranks_adopt_the_launching_candidate() {
        use pcg_core::usage::UsageScope;
        use pcg_core::ExecutionModel;
        let team = RankTeam::new(4);
        let scope = UsageScope::begin();
        team.run(&|_| usage::record(ExecutionModel::Mpi));
        assert_eq!(scope.finish().calls(ExecutionModel::Mpi), 4);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = RankTeam::new(0);
    }
}
