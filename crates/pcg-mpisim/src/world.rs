//! World construction and SPMD program execution.

use crate::comm::Comm;
use crate::cost::CostModel;
use crate::mailbox::Mailbox;
use crate::sched::{self, Sched};
use crate::sync::Semaphore;
use crate::team::RankTeam;
use parking_lot::Mutex;
use pcg_core::cancel::CancelToken;
use pcg_core::PcgError;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Shared state of one simulated world (internal).
pub(crate) struct WorldShared {
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) cost: CostModel,
    pub(crate) tokens: Semaphore,
    /// Present iff this run multiplexes ranks onto worker threads.
    pub(crate) sched: Option<Sched>,
    /// The launching candidate's cancel token (also captured by each
    /// mailbox/semaphore; kept here so the scheduler and fiber blocking
    /// loops can check it without reaching into those).
    pub(crate) cancel: Option<CancelToken>,
    /// Per-rank diagnostics set by the wait-for-graph detector when it
    /// proves the world quiescent; first reporter wins.
    pub(crate) deadlock: std::sync::OnceLock<String>,
    /// Set when a fiber overran its stack into the guard page.
    pub(crate) overflow: std::sync::OnceLock<String>,
}

impl WorldShared {
    pub(crate) fn is_multiplexed(&self) -> bool {
        self.sched.is_some()
    }

    pub(crate) fn notify_mailbox(&self, dst: usize) {
        if let Some(s) = &self.sched {
            s.notify_mailbox(dst);
        }
    }

    pub(crate) fn notify_token(&self) {
        if let Some(s) = &self.sched {
            s.notify_token();
        }
    }

    pub(crate) fn abort(&self) {
        self.tokens.abort();
        for mb in &self.mailboxes {
            mb.abort();
        }
        // Parked fibers must observe the abort and unwind.
        if let Some(s) = &self.sched {
            s.wake_all();
        }
    }
}

/// The result of running an SPMD program on a [`World`].
#[derive(Debug, Clone)]
pub struct SimOutcome<R> {
    /// Each rank's return value, indexed by rank.
    pub per_rank: Vec<R>,
    /// Each rank's final virtual clock, in seconds.
    pub clocks: Vec<f64>,
    /// Simulated elapsed time: the maximum final clock over ranks.
    pub elapsed: f64,
    /// Host wall-clock time of the whole simulation (thread spawning,
    /// token-serialized execution, teardown). Only useful for the
    /// virtual-vs-measured ablation: it reflects the simulator, not the
    /// simulated machine.
    pub wall_elapsed: f64,
}

impl<R> SimOutcome<R> {
    /// Rank 0's return value (where results are conventionally stored).
    pub fn root(&self) -> &R {
        &self.per_rank[0]
    }

    /// Consume the outcome, returning rank 0's value.
    pub fn into_root(mut self) -> R {
        self.per_rank.truncate(1);
        self.per_rank.pop().expect("world has at least one rank")
    }
}

/// A simulated MPI world: a rank count plus a cost model.
pub struct World {
    size: usize,
    cost: CostModel,
    max_tokens: usize,
    force_mux: bool,
}

impl World {
    /// A world of `size` ranks with the default cluster cost model and a
    /// compute-token pool sized to the physical parallelism.
    pub fn new(size: usize) -> World {
        assert!(size > 0, "world needs at least one rank");
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        World { size, cost: CostModel::default(), max_tokens: cores, force_mux: false }
    }

    /// Override the cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> World {
        self.cost = cost;
        self
    }

    /// Override the compute-token pool size (tests use 1 for strict
    /// determinism of measured compute).
    pub fn with_max_tokens(mut self, tokens: usize) -> World {
        assert!(tokens > 0, "token pool needs at least one permit");
        self.max_tokens = tokens;
        self
    }

    /// Force this world onto the fiber scheduler regardless of the
    /// process-global execution mode (no-op where fibers are
    /// unsupported). Containment relies on this for hostile candidates:
    /// the deadlock detector and stack guard pages only exist on the
    /// multiplexed path, and a stack-hogging rank on a plain OS thread
    /// would take the whole process down instead of producing a
    /// verdict.
    pub fn multiplexed(mut self) -> World {
        self.force_mux = true;
        self
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run `f` as an SPMD program: one invocation per rank, each on its
    /// own thread with a private [`Comm`]. Returns per-rank results and
    /// the simulated elapsed time, or the first rank failure.
    pub fn run<R, F>(&self, f: F) -> Result<SimOutcome<R>, PcgError>
    where
        R: Send,
        F: Fn(&Comm<'_>) -> R + Sync,
    {
        self.run_impl(None, f)
    }

    /// Run `f` on a warm [`RankTeam`] instead of spawning fresh rank
    /// threads. Identical semantics to [`World::run`]: all per-run state
    /// (mailboxes, cost model, token semaphore) is rebuilt here, only
    /// the OS threads are reused. The team size must equal the world
    /// size.
    pub fn run_on<R, F>(&self, team: &RankTeam, f: F) -> Result<SimOutcome<R>, PcgError>
    where
        R: Send,
        F: Fn(&Comm<'_>) -> R + Sync,
    {
        assert_eq!(
            team.size(),
            self.size,
            "rank team size must match world size"
        );
        self.run_impl(Some(team), f)
    }

    fn run_impl<R, F>(&self, team: Option<&RankTeam>, f: F) -> Result<SimOutcome<R>, PcgError>
    where
        R: Send,
        F: Fn(&Comm<'_>) -> R + Sync,
    {
        let wall_start = std::time::Instant::now();
        // A warm team fixes the execution style at team construction;
        // transient runs consult the process-global policy per run.
        let mux_workers = match team {
            Some(t) => t.mux_workers(),
            None => (sched::should_multiplex(self.size)
                || (self.force_mux && sched::supported()))
            .then(sched::workers),
        };
        let shared = WorldShared {
            mailboxes: (0..self.size).map(|_| Mailbox::new()).collect(),
            cost: self.cost.clone(),
            tokens: Semaphore::new(self.max_tokens.min(self.size.max(1))),
            sched: mux_workers.map(|w| Sched::new(self.size, w)),
            cancel: pcg_core::cancel::current_token(),
            deadlock: std::sync::OnceLock::new(),
            overflow: std::sync::OnceLock::new(),
        };
        if shared.is_multiplexed() {
            sched::note_ranks_multiplexed(self.size as u64);
        }
        let results: Mutex<Vec<Option<(R, f64)>>> =
            Mutex::new((0..self.size).map(|_| None).collect());
        let failure: Mutex<Option<String>> = Mutex::new(None);
        let cancelled = std::sync::atomic::AtomicBool::new(false);

        // The per-rank program, shared by the cold (scoped-spawn) and
        // warm (persistent team) paths. Runs on a thread that already
        // has the candidate's usage sink and cancel token installed.
        let rank_body = |rank: usize| {
            let shared = &shared;
            let comm = Comm::new(rank, shared.mailboxes.len(), shared);
            comm.acquire_token();
            if shared.tokens.is_aborted() {
                return;
            }
            let out = catch_unwind(AssertUnwindSafe(|| f(&comm)));
            match out {
                Ok(value) => {
                    let clock = comm.final_clock();
                    comm.release_token();
                    results.lock()[rank] = Some((value, clock));
                }
                Err(payload) => {
                    // `&*payload`: deref the Box so we downcast the
                    // payload, not the Box.
                    if pcg_core::cancel::is_cancel_payload(&*payload) {
                        // Harness-requested kill, not a candidate
                        // failure: remember it so the world re-unwinds
                        // with the marker after teardown.
                        cancelled.store(true, std::sync::atomic::Ordering::Release);
                    } else {
                        let msg = panic_message(&*payload);
                        let mut slot = failure.lock();
                        // First non-abort failure wins; cascade panics
                        // from the abort itself are noise.
                        let is_cascade = msg.contains("world aborted");
                        if slot.is_none() && !is_cascade {
                            *slot = Some(format!("rank {rank}: {msg}"));
                        }
                    }
                    if comm.holds_token() {
                        comm.release_token();
                    }
                    shared.abort();
                }
            }
        };

        match team {
            Some(team) => team.run(&shared, &rank_body),
            None if shared.is_multiplexed() => {
                // Oversubscribed world: run all ranks as fibers on a
                // small transient worker pool instead of one OS thread
                // per rank.
                sched::run_multiplexed(&shared, &rank_body);
            }
            None => {
                // Rank threads attribute their API usage to the
                // candidate that launched the world, not to whoever else
                // runs concurrently, and inherit its cancel token so a
                // killed candidate's ranks (and any nested shmem pools
                // they spawn) observe the kill.
                let usage_sink = pcg_core::usage::current_sink();
                let cancel_token = pcg_core::cancel::current_token();
                std::thread::scope(|scope| {
                    let mut handles = Vec::with_capacity(self.size);
                    for rank in 0..self.size {
                        let rank_body = &rank_body;
                        let usage_sink = usage_sink.clone();
                        let cancel_token = cancel_token.clone();
                        handles.push(
                            std::thread::Builder::new()
                                .name(format!("mpisim-rank-{rank}"))
                                .stack_size(1 << 21)
                                .spawn_scoped(scope, move || {
                                    let _usage = pcg_core::usage::install_sink(usage_sink);
                                    let _cancel = pcg_core::cancel::install_token(cancel_token);
                                    rank_body(rank)
                                })
                                .expect("failed to spawn rank thread"),
                        );
                    }
                    for h in handles {
                        let _ = h.join();
                    }
                });
            }
        }

        if cancelled.load(std::sync::atomic::Ordering::Acquire) {
            // Every rank thread has joined; resume the cooperative
            // cancellation unwind on the candidate thread.
            pcg_core::cancel::panic_cancelled();
        }
        // Containment verdicts outrank the abort-cascade noise: a
        // detected deadlock or caught overflow aborted the world itself,
        // and any `failure` recorded afterwards is a symptom.
        if let Some(msg) = shared.overflow.get() {
            return Err(PcgError::StackOverflow(msg.clone()));
        }
        if let Some(msg) = shared.deadlock.get() {
            return Err(PcgError::Deadlock(msg.clone()));
        }
        if let Some(msg) = failure.into_inner() {
            return Err(PcgError::Runtime(msg));
        }
        let mut per_rank = Vec::with_capacity(self.size);
        let mut clocks = Vec::with_capacity(self.size);
        for slot in results.into_inner() {
            // A rank may have exited early only if the world aborted, in
            // which case `failure` was set above.
            let (value, clock) = slot.ok_or_else(|| {
                PcgError::Runtime("rank exited without result".into())
            })?;
            per_rank.push(value);
            clocks.push(clock);
        }
        let elapsed = clocks.iter().copied().fold(0.0f64, f64::max);
        Ok(SimOutcome {
            per_rank,
            clocks,
            elapsed,
            wall_elapsed: wall_start.elapsed().as_secs_f64(),
        })
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if pcg_core::cancel::is_cancel_payload(payload) {
        "cancelled".to_string()
    } else {
        "rank panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::block_range;
    use crate::packet::ReduceOp;

    fn det_world(size: usize) -> World {
        World::new(size).with_cost_model(CostModel::deterministic())
    }

    #[test]
    fn single_rank_world() {
        let out = det_world(1).run(|comm| comm.rank() + comm.size()).unwrap();
        assert_eq!(out.per_rank, vec![1]);
        assert_eq!(out.elapsed, 0.0);
    }

    #[test]
    fn p2p_roundtrip() {
        let out = det_world(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 7, &[1.5f64, 2.5]);
                    comm.recv::<f64>(Some(1), 8)
                } else {
                    let got = comm.recv::<f64>(Some(0), 7);
                    let doubled: Vec<f64> = got.iter().map(|x| x * 2.0).collect();
                    comm.send(0, 8, &doubled);
                    got
                }
            })
            .unwrap();
        assert_eq!(out.per_rank[0], vec![3.0, 5.0]);
        assert_eq!(out.per_rank[1], vec![1.5, 2.5]);
        assert!(out.elapsed > 0.0, "virtual time advanced by comm costs");
    }

    #[test]
    fn any_source_receive() {
        let out = det_world(4)
            .run(|comm| {
                if comm.rank() == 0 {
                    let mut sum = 0i64;
                    for _ in 1..comm.size() {
                        sum += comm.recv_one::<i64>(None, 3);
                    }
                    sum
                } else {
                    comm.send_one(0, 3, comm.rank() as i64);
                    0
                }
            })
            .unwrap();
        assert_eq!(out.per_rank[0], 6);
    }

    #[test]
    fn bcast_all_roots() {
        for size in [1, 2, 3, 5, 8] {
            for root in [0, size - 1, size / 2] {
                let out = det_world(size)
                    .run(|comm| {
                        let mut data = if comm.rank() == root {
                            vec![42i64, 7]
                        } else {
                            vec![]
                        };
                        comm.bcast(root, &mut data);
                        data
                    })
                    .unwrap();
                for r in out.per_rank {
                    assert_eq!(r, vec![42, 7], "size={size} root={root}");
                }
            }
        }
    }

    #[test]
    fn reduce_and_allreduce() {
        for size in [1, 2, 4, 6, 7, 16] {
            let out = det_world(size)
                .run(|comm| {
                    let local = vec![comm.rank() as f64, 1.0];
                    let red = comm.reduce(0, &local, ReduceOp::Sum);
                    let all = comm.allreduce(&local, ReduceOp::Sum);
                    (red, all)
                })
                .unwrap();
            let expect_sum = (0..size).sum::<usize>() as f64;
            for (rank, (red, all)) in out.per_rank.iter().enumerate() {
                assert_eq!(all, &vec![expect_sum, size as f64], "size={size}");
                if rank == 0 {
                    assert_eq!(red.as_ref().unwrap(), &vec![expect_sum, size as f64]);
                } else {
                    assert!(red.is_none());
                }
            }
        }
    }

    #[test]
    fn allreduce_min_max() {
        let out = det_world(5)
            .run(|comm| {
                let r = comm.rank() as i64;
                (
                    comm.allreduce_one(r, ReduceOp::Min),
                    comm.allreduce_one(r, ReduceOp::Max),
                )
            })
            .unwrap();
        for (mn, mx) in out.per_rank {
            assert_eq!((mn, mx), (0, 4));
        }
    }

    #[test]
    fn scan_and_exscan() {
        for size in [1, 2, 3, 8, 9] {
            let out = det_world(size)
                .run(|comm| {
                    let inc = comm.scan_one((comm.rank() + 1) as i64, ReduceOp::Sum);
                    let exc = comm.exscan_one((comm.rank() + 1) as i64, ReduceOp::Sum);
                    (inc, exc)
                })
                .unwrap();
            for (rank, (inc, exc)) in out.per_rank.iter().enumerate() {
                let want_inc: i64 = (1..=rank as i64 + 1).sum();
                assert_eq!(*inc, want_inc, "size={size} rank={rank}");
                assert_eq!(*exc, want_inc - (rank as i64 + 1), "size={size} rank={rank}");
            }
        }
    }

    #[test]
    fn gather_allgather() {
        let out = det_world(4)
            .run(|comm| {
                let local = vec![comm.rank() as u32; comm.rank() + 1];
                (comm.gather(0, &local), comm.allgather(&local))
            })
            .unwrap();
        let want: Vec<u32> = vec![0, 1, 1, 2, 2, 2, 3, 3, 3, 3];
        for (rank, (g, ag)) in out.per_rank.iter().enumerate() {
            assert_eq!(ag, &want);
            if rank == 0 {
                assert_eq!(g.as_ref().unwrap(), &want);
            } else {
                assert!(g.is_none());
            }
        }
    }

    #[test]
    fn scatter_blocks_roundtrip() {
        let data: Vec<f64> = (0..103).map(|i| i as f64).collect();
        let data_ref = &data;
        let out = det_world(5)
            .run(|comm| {
                let chunk = comm.scatter_blocks(
                    0,
                    (comm.rank() == 0).then_some(data_ref.as_slice()),
                    data_ref.len(),
                );
                comm.gather(0, &chunk)
            })
            .unwrap();
        assert_eq!(out.per_rank[0].as_ref().unwrap(), &data);
    }

    #[test]
    fn alltoall_exchanges() {
        let out = det_world(3)
            .run(|comm| {
                let chunks: Vec<Vec<i64>> = (0..comm.size())
                    .map(|dst| vec![(comm.rank() * 10 + dst) as i64])
                    .collect();
                comm.alltoall(chunks)
            })
            .unwrap();
        // Rank d receives chunk [s*10 + d] from each source s.
        for (d, got) in out.per_rank.iter().enumerate() {
            let want: Vec<Vec<i64>> = (0..3).map(|s| vec![(s * 10 + d) as i64]).collect();
            assert_eq!(got, &want, "dst={d}");
        }
    }

    #[test]
    fn barrier_completes() {
        for size in [1, 2, 5, 8] {
            det_world(size)
                .run(|comm| {
                    for _ in 0..3 {
                        comm.barrier();
                    }
                })
                .unwrap();
        }
    }

    #[test]
    fn wall_elapsed_reported() {
        let out = det_world(4).run(|comm| comm.rank()).unwrap();
        assert!(out.wall_elapsed > 0.0);
    }

    #[test]
    fn recv_type_mismatch_is_a_runtime_error() {
        let err = det_world(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 5, &[1.0f64]);
                } else {
                    // Wrong element type: the MPI datatype-mismatch analog.
                    let _ = comm.recv::<i64>(Some(0), 5);
                }
            })
            .unwrap_err();
        match err {
            PcgError::Runtime(msg) => assert!(msg.contains("type mismatch"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn send_out_of_range_is_a_runtime_error() {
        let err = det_world(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(5, 1, &[1.0f64]);
                }
            })
            .unwrap_err();
        assert!(matches!(err, PcgError::Runtime(_)));
    }

    #[test]
    fn rank_panic_becomes_error() {
        let err = det_world(4)
            .run(|comm| {
                if comm.rank() == 2 {
                    panic!("deliberate failure");
                }
                // Other ranks block forever; the abort must release them.
                let _ = comm.recv::<i64>(Some(2), 99);
            })
            .unwrap_err();
        match err {
            PcgError::Runtime(msg) => {
                assert!(msg.contains("deliberate failure"), "{msg}");
                assert!(msg.contains("rank 2"), "{msg}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn cancelled_world_unwinds_deadlocked_ranks() {
        // Both ranks block on a receive the other never sends — the
        // classic candidate deadlock. Cancelling the token must tear the
        // world down and re-unwind with the Cancelled marker.
        let token = pcg_core::cancel::CancelToken::new();
        let _g = pcg_core::cancel::install_token(Some(token.clone()));
        let t = token.clone();
        let timer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            t.cancel();
        });
        let result = catch_unwind(AssertUnwindSafe(|| {
            det_world(2).run(|comm| {
                let _ = comm.recv::<i64>(Some(1 - comm.rank()), 9);
            })
        }));
        timer.join().unwrap();
        assert!(pcg_core::cancel::is_cancel_payload(result.unwrap_err().as_ref()));
    }

    #[test]
    fn virtual_time_scales_with_message_size() {
        let run = |bytes: usize| {
            det_world(2)
                .run(move |comm| {
                    if comm.rank() == 0 {
                        comm.send(1, 1, &vec![0f64; bytes / 8]);
                    } else {
                        let _ = comm.recv::<f64>(Some(0), 1);
                    }
                })
                .unwrap()
                .elapsed
        };
        let small = run(64);
        let big = run(64 << 20);
        assert!(big > small * 100.0, "big={big} small={small}");
    }

    #[test]
    fn inter_node_costlier_than_intra() {
        let elapsed = |size: usize, dst: usize| {
            det_world(size)
                .run(move |comm| {
                    if comm.rank() == 0 {
                        comm.send(dst, 1, &vec![0f64; 1 << 16]);
                    } else if comm.rank() == dst {
                        let _ = comm.recv::<f64>(Some(0), 1);
                    }
                })
                .unwrap()
                .elapsed
        };
        // Rank 1 shares node 0; rank 64 is on node 1 (64 ranks/node).
        assert!(elapsed(65, 64) > elapsed(65, 1));
    }

    #[test]
    fn many_ranks_run_on_laptop() {
        let out = det_world(128)
            .run(|comm| {
                let local = block_range(1 << 12, comm.size(), comm.rank()).len() as i64;
                comm.allreduce_one(local, ReduceOp::Sum)
            })
            .unwrap();
        for v in out.per_rank {
            assert_eq!(v, 1 << 12);
        }
    }

    #[test]
    fn run_on_warm_team_matches_cold_semantics() {
        let team = RankTeam::new(6);
        // Successive runs reuse the same rank threads; per-run state
        // (mailboxes, semaphore) is rebuilt each time.
        for _ in 0..3 {
            let warm = det_world(6)
                .run_on(&team, |comm| comm.allreduce_one(comm.rank() as i64, ReduceOp::Sum))
                .unwrap();
            assert_eq!(warm.per_rank, vec![15; 6]);
        }
        // A failing run aborts cleanly...
        let err = det_world(6)
            .run_on(&team, |comm| {
                if comm.rank() == 3 {
                    panic!("deliberate failure");
                }
                let _ = comm.recv::<i64>(Some(3), 9);
            })
            .unwrap_err();
        match err {
            PcgError::Runtime(msg) => assert!(msg.contains("rank 3"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
        // ...and the team itself stays functional afterwards (the lease
        // layer still discards poisoned teams out of caution).
        let ok = det_world(6).run_on(&team, |comm| comm.rank()).unwrap();
        assert_eq!(ok.per_rank, (0..6).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "team size must match")]
    fn run_on_size_mismatch_panics() {
        let team = RankTeam::new(2);
        let _ = det_world(3).run_on(&team, |comm| comm.rank());
    }

    #[test]
    fn advance_adds_modeled_compute() {
        let out = det_world(2)
            .run(|comm| {
                if comm.rank() == 1 {
                    comm.advance(0.25);
                }
                comm.clock()
            })
            .unwrap();
        assert!(out.per_rank[1] >= 0.25);
        assert_eq!(out.elapsed, out.clocks.iter().copied().fold(0.0, f64::max));
    }

    #[test]
    fn allreduce_scales_logarithmically() {
        // Virtual elapsed time for an 8-byte allreduce should grow
        // roughly like log2(P), not P.
        let elapsed = |p: usize| {
            det_world(p)
                .run(|comm| comm.allreduce_one(1.0f64, ReduceOp::Sum))
                .unwrap()
                .elapsed
        };
        let t8 = elapsed(8);
        let t64 = elapsed(64);
        // log2(64)/log2(8) = 2; allow generous slack but reject linear
        // (which would be 8x).
        assert!(t64 < t8 * 4.0, "t8={t8} t64={t64}");
        assert!(t64 > t8, "t8={t8} t64={t64}");
    }
}
