//! Rank-multiplexing cooperative scheduler.
//!
//! Thread-per-rank execution spawns one OS thread per simulated rank,
//! which makes the paper's 512-rank sweep column cost 512 spawns plus a
//! condvar storm per run on a machine with a few dozen cores. This
//! module runs the same rank programs as **stackful fibers** multiplexed
//! onto `W ≤ ~2×cores` worker threads: a rank that blocks in
//! `recv`/token acquisition parks its continuation (a saved stack) in a
//! blocked-rank queue instead of parking an OS thread, and a worker
//! resumes the next runnable rank.
//!
//! Scheduling is *run-to-block*: fibers yield only at the exact points
//! where the thread-per-rank path would block on a condvar (mailbox
//! waits and compute-token waits). Virtual time is governed solely by
//! [`crate::CostModel`] arithmetic on message metadata, which is
//! identical in both execution paths, so simulation records are
//! byte-identical to thread-per-rank at any worker count.
//!
//! ## Wakeup protocol
//!
//! All scheduler state sits behind one mutex. A rank only ever waits on
//! its *own* mailbox, so mailbox wakeups are keyed by rank: a sender
//! deposits (mailbox lock, dropped) and then notifies the scheduler
//! (scheduler lock). The lost-wakeup race — a deposit landing between a
//! fiber's failed `try_take` and the worker filing it as blocked — is
//! closed by the worker re-probing the wait condition *under the
//! scheduler lock* after the fiber has switched out: deposits are
//! ordered either before the probe (rank goes straight back to ready)
//! or after it (the sender's notify finds the filed waiter). No path
//! holds a mailbox or semaphore lock while taking the scheduler lock,
//! so the two lock orders never form a cycle.
//!
//! ## Cancellation and abort
//!
//! Idle workers tick at [`CANCEL_TICK`] when the launching candidate
//! has a cancel token, and on observing a kill wake every parked fiber;
//! resumed fibers hit their cancel check and unwind with the marker,
//! exactly like parked rank threads do. `WorldShared::abort` likewise
//! wakes all parked fibers so they observe the abort and unwind. The
//! scheduler only terminates once every rank has run to completion, so
//! fibers are never dropped mid-stack in normal operation.

use crate::sync::CANCEL_TICK;
use crate::world::WorldShared;
use parking_lot::{Condvar, Mutex};
use pcg_core::{cancel, usage, warm};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

// ---- policy ----------------------------------------------------------

/// How worlds choose between thread-per-rank and multiplexed execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Multiplex oversubscribed worlds (`ranks > workers()`) when the
    /// warm path is enabled (`PCG_COLD=1` restores thread-per-rank).
    Auto,
    /// Always thread-per-rank (the A/B baseline).
    ForceThreads,
    /// Multiplex every multi-rank world, however small (tests/benches).
    ForceMux,
}

static MODE: AtomicU8 = AtomicU8::new(0);

/// Set the process-global execution mode (benches and tests; the
/// default is [`ExecMode::Auto`]).
pub fn set_exec_mode(mode: ExecMode) {
    MODE.store(mode as u8, Ordering::Release);
}

/// The current execution mode.
pub fn exec_mode() -> ExecMode {
    match MODE.load(Ordering::Acquire) {
        1 => ExecMode::ForceThreads,
        2 => ExecMode::ForceMux,
        _ => ExecMode::Auto,
    }
}

/// Whether fiber multiplexing is implemented for this target.
pub fn supported() -> bool {
    cfg!(all(target_arch = "x86_64", unix))
}

/// Number of multiplexer worker threads: `PCG_MPI_WORKERS` if set to a
/// positive integer, else twice the available parallelism (min 2). Read
/// once per process.
pub fn workers() -> usize {
    static W: OnceLock<usize> = OnceLock::new();
    *W.get_or_init(|| {
        if let Ok(v) = std::env::var("PCG_MPI_WORKERS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        (2 * cores).max(2)
    })
}

/// Whether a world of `ranks` ranks runs multiplexed under the current
/// mode.
pub fn should_multiplex(ranks: usize) -> bool {
    if !supported() {
        return false;
    }
    match exec_mode() {
        ExecMode::ForceThreads => false,
        ExecMode::ForceMux => ranks > 1,
        ExecMode::Auto => warm::enabled() && ranks > workers(),
    }
}

/// OS threads a world of `ranks` ranks actually occupies under the
/// current mode — the quantity the lease layer budgets by.
pub fn os_threads_for(ranks: usize) -> usize {
    if should_multiplex(ranks) {
        workers()
    } else {
        ranks
    }
}

// ---- stats -----------------------------------------------------------

static RANKS_MULTIPLEXED: AtomicU64 = AtomicU64::new(0);
static BYTES_ZERO_COPIED: AtomicU64 = AtomicU64::new(0);
static DEADLOCKS_DETECTED: AtomicU64 = AtomicU64::new(0);
static STACK_OVERFLOWS_CAUGHT: AtomicU64 = AtomicU64::new(0);
static GUARD_FAULTS: AtomicU64 = AtomicU64::new(0);

/// Process-wide multiplexer counters (monotonic; the harness snapshots
/// and diffs them per evaluation, like the lease stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedStats {
    /// Simulated ranks that ran as fibers instead of OS threads.
    pub ranks_multiplexed: u64,
    /// Payload bytes forwarded or moved by reference in transport
    /// (collective hops, moved sends) instead of being copied.
    pub bytes_zero_copied: u64,
    /// Worlds failed fast by the wait-for-graph deadlock detector.
    pub deadlocks_detected: u64,
    /// Fiber stack overflows converted into verdicts by the guard page.
    pub stack_overflows_caught: u64,
    /// SIGSEGV faults classified as guard-page hits (one per caught
    /// overflow; counted separately so a divergence between the two —
    /// a fault that never became a verdict — is visible).
    pub guard_faults: u64,
}

/// Snapshot the counters.
pub fn stats() -> SchedStats {
    SchedStats {
        ranks_multiplexed: RANKS_MULTIPLEXED.load(Ordering::Relaxed),
        bytes_zero_copied: BYTES_ZERO_COPIED.load(Ordering::Relaxed),
        deadlocks_detected: DEADLOCKS_DETECTED.load(Ordering::Relaxed),
        stack_overflows_caught: STACK_OVERFLOWS_CAUGHT.load(Ordering::Relaxed),
        guard_faults: GUARD_FAULTS.load(Ordering::Relaxed),
    }
}

pub(crate) fn note_ranks_multiplexed(n: u64) {
    RANKS_MULTIPLEXED.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn note_zero_copy(bytes: usize) {
    BYTES_ZERO_COPIED.fetch_add(bytes as u64, Ordering::Relaxed);
}

// ---- deadlock detection policy ---------------------------------------

static DEADLOCK_DETECT: AtomicBool = AtomicBool::new(true);

/// Enable/disable the wait-for-graph deadlock detector (on by default).
/// Only benches and tests turn it off, to measure the timeout-only
/// baseline the detector replaces.
pub fn set_deadlock_detection(enabled: bool) {
    DEADLOCK_DETECT.store(enabled, Ordering::Release);
}

fn deadlock_detection() -> bool {
    DEADLOCK_DETECT.load(Ordering::Acquire)
}

// ---- yield reasons ---------------------------------------------------

/// Why a fiber switched back to its worker.
///
/// Blocking variants carry the rank's virtual clock at park time so the
/// deadlock detector can report *when* (in simulated time) each rank
/// blocked — wall-clock instants would differ across worker counts.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Wait {
    /// Blocked receiving on the rank's own mailbox.
    Mailbox { src: Option<usize>, tag: u32, clock: f64 },
    /// Blocked acquiring a compute token. `gate` marks the hybrid
    /// compute-admission gate (same semaphore, labeled separately in
    /// deadlock diagnostics).
    Token { gate: bool, clock: f64 },
    /// The fiber overran its stack into the guard page; the SIGSEGV
    /// classifier redirected it to the overflow landing pad, which
    /// switched out with this reason. The stack is unusable.
    StackOverflow,
    /// The rank body ran to completion (or unwound into the fiber's
    /// catch).
    Done,
}

// ---- fibers ----------------------------------------------------------

#[cfg(all(target_arch = "x86_64", unix))]
mod fiber {
    use super::Wait;
    use std::cell::Cell;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Usable stack bytes per fiber; matches the thread-per-rank path's
    /// reduced rank-thread stacks.
    pub(super) const STACK_SIZE: usize = 1 << 21;
    const STACK_CANARY: u64 = 0xF1BE_75AC_CA4A_11D8;

    // Minimal SysV x86_64 context switch: save the callee-saved integer
    // registers and the stack pointer, load the target's. Everything
    // else is caller-saved at the (extern "C") call boundary. `save`
    // receives the suspended context's rsp; `to` is the context to
    // enter.
    std::arch::global_asm!(
        r#"
        .text
        .globl pcg_mpisim_fiber_switch
        .type pcg_mpisim_fiber_switch, @function
pcg_mpisim_fiber_switch:
        push rbp
        push rbx
        push r12
        push r13
        push r14
        push r15
        mov [rdi], rsp
        mov rsp, rsi
        pop r15
        pop r14
        pop r13
        pop r12
        pop rbx
        pop rbp
        ret
        .size pcg_mpisim_fiber_switch, . - pcg_mpisim_fiber_switch

        .globl pcg_mpisim_fiber_trampoline
        .type pcg_mpisim_fiber_trampoline, @function
pcg_mpisim_fiber_trampoline:
        mov rdi, r12
        and rsp, -16
        call r13
        ud2
        .size pcg_mpisim_fiber_trampoline, . - pcg_mpisim_fiber_trampoline
        "#
    );

    extern "C" {
        fn pcg_mpisim_fiber_switch(save: *mut *mut u8, to: *mut u8);
        fn pcg_mpisim_fiber_trampoline();
    }

    /// The live link between a worker and the fiber it is running,
    /// stack-allocated in `resume` and published through worker TLS so
    /// `yield_fiber` (called from arbitrarily deep in the rank body)
    /// can find the worker's saved context.
    struct SwitchPair {
        worker_rsp: *mut u8,
        fiber_rsp: *mut u8,
        reason: Wait,
    }

    thread_local! {
        static CURRENT: Cell<*mut SwitchPair> = const { Cell::new(std::ptr::null_mut()) };
    }

    struct EntryData {
        body: Option<Box<dyn FnOnce() + 'static>>,
    }

    extern "C" fn fiber_entry(data: *mut EntryData) -> ! {
        // Contain every unwind inside the fiber: panics (candidate
        // failures, abort cascades, cancel markers) are already handled
        // by the rank body's own catch in `world.rs`; this outer catch
        // only guarantees nothing ever unwinds across the switch
        // boundary, where there is no frame to unwind into.
        let body = unsafe { (*data).body.take().expect("fiber body taken twice") };
        let _ = catch_unwind(AssertUnwindSafe(body));
        unsafe { switch_out_done() }
    }

    // `#[inline(never)]` on everything touching `CURRENT` from fiber
    // context is load-bearing: LLVM models a thread-local's address as
    // constant within a function body (a function cannot change threads
    // under normal execution), so if these reads inline into a caller
    // that spans a context switch — e.g. a blocking-recv retry loop that
    // yields more than once — the hoisted address keeps pointing at the
    // *previous* worker thread's cell after the fiber migrates, which
    // that worker has already nulled. Keeping each access inside its own
    // uninlinable call recomputes the TLS address on whatever thread the
    // fiber currently runs on.
    #[inline(never)]
    unsafe fn switch_out_done() -> ! {
        let pair = CURRENT.with(|c| c.get());
        assert!(!pair.is_null(), "mpisim: fiber finishing without a worker");
        (*pair).reason = Wait::Done;
        let mut scratch: *mut u8 = std::ptr::null_mut();
        pcg_mpisim_fiber_switch(&mut scratch, (*pair).worker_rsp);
        unreachable!("finished fiber resumed")
    }

    /// Park the calling fiber with `reason`; returns when a worker
    /// resumes it. Must only be called from inside a fiber.
    #[inline(never)]
    pub(super) fn yield_fiber(reason: Wait) {
        let pair = CURRENT.with(|c| c.get());
        assert!(!pair.is_null(), "mpisim: blocking yield outside a rank fiber");
        unsafe {
            (*pair).reason = reason;
            let worker = (*pair).worker_rsp;
            // After this returns we may be on a different worker thread;
            // `pair` points into the *previous* resume's stack and must
            // not be touched again.
            pcg_mpisim_fiber_switch(&mut (*pair).fiber_rsp, worker);
        }
    }

    /// Landing pad the SIGSEGV classifier redirects an overflowed fiber
    /// to. Entered by a register rewrite (not a call) with RSP pointing
    /// into the rescue region of the fiber's own mapping — the fiber's
    /// stack proper is exhausted and the worker's stack is unreachable
    /// mid-fiber. Reports the overflow to the worker exactly like a
    /// normal switch-out, then never runs again.
    extern "C" fn overflow_landing() -> ! {
        unsafe { switch_out_overflow() }
    }

    #[inline(never)]
    unsafe fn switch_out_overflow() -> ! {
        // Non-null by construction: the classifier only redirects
        // faults inside the guard range `resume` published on this
        // thread, which it does while CURRENT is set.
        let pair = CURRENT.with(|c| c.get());
        (*pair).reason = Wait::StackOverflow;
        let mut scratch: *mut u8 = std::ptr::null_mut();
        pcg_mpisim_fiber_switch(&mut scratch, (*pair).worker_rsp);
        unreachable!("overflowed fiber resumed")
    }

    /// Install the process-wide SIGSEGV classifier (once) and this
    /// thread's sigaltstack (per worker thread). Must run on every
    /// thread that can resume fibers, before it resumes any.
    pub(super) fn ensure_signal_setup() {
        stack::ensure_signal_setup();
    }

    #[cfg(target_os = "linux")]
    mod stack {
        //! mmap-backed pooled fiber stacks with a PROT_NONE guard and a
        //! SIGSEGV classifier that converts guard hits into overflow
        //! verdicts.
        //!
        //! Mapping layout, low to high addresses:
        //!
        //! ```text
        //! | rescue 16 KiB RW | guard 64 KiB PROT_NONE | stack 2 MiB RW |
        //! ```
        //!
        //! The stack grows down toward the guard. rustc emits inline
        //! stack probes on x86_64-linux, so even frames larger than the
        //! guard touch pages in descending order and cannot leap over
        //! it. On a guard hit the handler redirects the fiber to
        //! `overflow_landing` running on the rescue region of the same
        //! mapping. Overflowed mappings are quarantined (leaked), never
        //! reused or unmapped: callees the fiber abandoned (a hybrid
        //! pool region in flight, a held lock's waiter list) may still
        //! reference its frames.
        use parking_lot::Mutex;
        use std::cell::{Cell, RefCell};
        use std::sync::atomic::Ordering;
        use std::sync::OnceLock;

        /// Scratch stack for the overflow landing pad; it only needs a
        /// TLS read and one context switch.
        const RESCUE_SIZE: usize = 1 << 14;
        /// PROT_NONE span between rescue and stack. 16 pages, so a
        /// frame-sized jump cannot clear it even without probes.
        const GUARD_SIZE: usize = 1 << 16;
        const TOTAL_SIZE: usize = RESCUE_SIZE + GUARD_SIZE + super::STACK_SIZE;
        /// Parked reusable mappings kept across fibers (an mmap +
        /// mprotect per fiber would dominate small-world mux runs).
        const POOL_CAP: usize = 64;
        const ALT_STACK_SIZE: usize = 1 << 15;

        mod os {
            //! Raw bindings for the handful of POSIX calls this module
            //! needs. The workspace vendors no `libc` crate, but every
            //! std binary already links the platform C library, so the
            //! functions are declared directly; the struct layouts and
            //! constants are the x86_64-linux (glibc/musl-compatible)
            //! ones, which is exactly the cfg this module builds under.
            #![allow(dead_code)]

            pub const PROT_NONE: i32 = 0;
            pub const PROT_READ: i32 = 1;
            pub const PROT_WRITE: i32 = 2;
            pub const MAP_PRIVATE: i32 = 0x02;
            pub const MAP_ANONYMOUS: i32 = 0x20;
            pub const SIGSEGV: i32 = 11;
            pub const SA_SIGINFO: i32 = 4;
            pub const SA_ONSTACK: i32 = 0x0800_0000;
            pub const SS_DISABLE: i32 = 2;
            /// `mcontext_t.gregs` indices (sys/ucontext.h).
            pub const REG_RSP: usize = 15;
            pub const REG_RIP: usize = 16;

            #[repr(C)]
            pub struct SigInfo {
                pub si_signo: i32,
                pub si_errno: i32,
                pub si_code: i32,
                pad: i32,
                /// Fault address for SIGSEGV (start of the union).
                pub si_addr: *mut u8,
                rest: [u64; 13],
            }

            #[repr(C)]
            #[derive(Clone, Copy)]
            pub struct SigSet {
                pub bits: [u64; 16],
            }

            #[repr(C)]
            pub struct SigAction {
                /// `sa_handler` / `sa_sigaction` union.
                pub handler: usize,
                pub mask: SigSet,
                pub flags: i32,
                pub restorer: usize,
            }

            #[repr(C)]
            pub struct StackT {
                pub ss_sp: *mut u8,
                pub ss_flags: i32,
                pub ss_size: usize,
            }

            /// Prefix of glibc's `ucontext_t` up through the general
            /// registers (`uc_mcontext.gregs` starts at byte 40); the
            /// FP state and signal mask behind it are never touched.
            #[repr(C)]
            pub struct UContext {
                pub uc_flags: u64,
                pub uc_link: *mut UContext,
                pub uc_stack: StackT,
                pub gregs: [i64; 23],
            }

            extern "C" {
                pub fn mmap(
                    addr: *mut u8,
                    len: usize,
                    prot: i32,
                    flags: i32,
                    fd: i32,
                    offset: i64,
                ) -> *mut u8;
                pub fn munmap(addr: *mut u8, len: usize) -> i32;
                pub fn mprotect(addr: *mut u8, len: usize, prot: i32) -> i32;
                pub fn sigaction(
                    signum: i32,
                    act: *const SigAction,
                    oldact: *mut SigAction,
                ) -> i32;
                pub fn sigaltstack(ss: *const StackT, old_ss: *mut StackT) -> i32;
            }
        }

        /// One guarded fiber-stack mapping.
        pub(super) struct StackMem {
            base: *mut u8,
        }

        // SAFETY: plain memory; ownership moves between the pool and at
        // most one fiber at a time.
        unsafe impl Send for StackMem {}

        impl StackMem {
            fn map() -> StackMem {
                unsafe {
                    let base = os::mmap(
                        std::ptr::null_mut(),
                        TOTAL_SIZE,
                        os::PROT_READ | os::PROT_WRITE,
                        os::MAP_PRIVATE | os::MAP_ANONYMOUS,
                        -1,
                        0,
                    );
                    assert!(base as isize != -1, "mpisim: fiber stack mmap failed");
                    let rc = os::mprotect(base.add(RESCUE_SIZE), GUARD_SIZE, os::PROT_NONE);
                    assert_eq!(rc, 0, "mpisim: fiber guard mprotect failed");
                    StackMem { base }
                }
            }

            /// Low end of the usable stack (first byte above the guard).
            pub(super) fn lo(&self) -> *mut u8 {
                unsafe { self.base.add(RESCUE_SIZE + GUARD_SIZE) }
            }

            /// High end of the usable stack (initial stack top).
            pub(super) fn hi(&self) -> *mut u8 {
                unsafe { self.lo().add(super::STACK_SIZE) }
            }

            fn guard_range(&self) -> (usize, usize) {
                let lo = self.base as usize + RESCUE_SIZE;
                (lo, lo + GUARD_SIZE)
            }
        }

        impl Drop for StackMem {
            fn drop(&mut self) {
                unsafe {
                    os::munmap(self.base, TOTAL_SIZE);
                }
            }
        }

        static POOL: Mutex<Vec<StackMem>> = Mutex::new(Vec::new());

        pub(super) fn acquire() -> StackMem {
            POOL.lock().pop().unwrap_or_else(StackMem::map)
        }

        pub(super) fn release(stack: StackMem) {
            let mut pool = POOL.lock();
            if pool.len() < POOL_CAP {
                pool.push(stack);
            }
            // Beyond the cap the drop unmaps it.
        }

        /// Leak an overflowed mapping: abandoned callees may still hold
        /// pointers into its frames, so it must never be reused *or*
        /// unmapped. Bounded by the number of overflows caught.
        pub(super) fn quarantine(stack: StackMem) {
            std::mem::forget(stack);
        }

        thread_local! {
            /// Guard range of the fiber this thread is currently
            /// running; (0, 0) when no fiber is live. Const-initialized
            /// Cell with no destructor, so reads from the signal
            /// handler are plain TLS loads (async-signal-safe).
            static GUARD_RANGE: Cell<(usize, usize)> = const { Cell::new((0, 0)) };
        }

        pub(super) fn enter_fiber(stack: &StackMem) {
            GUARD_RANGE.with(|c| c.set(stack.guard_range()));
        }

        pub(super) fn leave_fiber() {
            GUARD_RANGE.with(|c| c.set((0, 0)));
        }

        /// The disposition SIGSEGV had before the classifier was
        /// installed (Rust's own stack-overflow reporter, usually).
        /// Written once inside the install `OnceLock`, read-only after.
        struct OldAction(std::cell::UnsafeCell<os::SigAction>);
        unsafe impl Sync for OldAction {}
        static OLD: OldAction = OldAction(std::cell::UnsafeCell::new(os::SigAction {
            handler: 0,
            mask: os::SigSet { bits: [0; 16] },
            flags: 0,
            restorer: 0,
        }));

        /// SIGSEGV classifier. Async-signal-safe by construction: a
        /// const-initialized TLS read, one relaxed atomic add, and
        /// direct register writes into the ucontext — no allocation,
        /// locking, formatting, or unwinding.
        extern "C" fn segv_handler(_sig: i32, info: *mut os::SigInfo, ctx: *mut os::UContext) {
            let addr = unsafe { (*info).si_addr as usize };
            let (lo, hi) = GUARD_RANGE.with(|c| c.get());
            if lo != 0 && (lo..hi).contains(&addr) {
                super::super::GUARD_FAULTS.fetch_add(1, Ordering::Relaxed);
                let land: extern "C" fn() -> ! = super::overflow_landing;
                unsafe {
                    // Resume the fiber at the landing pad on the rescue
                    // region (lo == top of rescue). The −8 gives RSP
                    // call-site parity (SysV: rsp % 16 == 8 at entry).
                    let gregs = &mut (*ctx).gregs;
                    gregs[os::REG_RSP] = (lo - 8) as i64;
                    gregs[os::REG_RIP] = land as usize as i64;
                }
                return;
            }
            // Not a fiber guard hit: put the previous disposition back
            // and return; the faulting instruction re-executes into it
            // (Rust's handler for ordinary stack overflows, or SIG_DFL).
            unsafe {
                os::sigaction(os::SIGSEGV, OLD.0.get(), std::ptr::null_mut());
            }
        }

        fn install_handler() {
            static INSTALLED: OnceLock<()> = OnceLock::new();
            INSTALLED.get_or_init(|| unsafe {
                let h: extern "C" fn(i32, *mut os::SigInfo, *mut os::UContext) = segv_handler;
                let act = os::SigAction {
                    handler: h as usize,
                    mask: os::SigSet { bits: [0; 16] },
                    flags: os::SA_SIGINFO | os::SA_ONSTACK,
                    restorer: 0,
                };
                let rc = os::sigaction(os::SIGSEGV, &act, OLD.0.get());
                assert_eq!(rc, 0, "mpisim: installing the SIGSEGV classifier failed");
            });
        }

        /// Per-thread sigaltstack: the handler must run somewhere even
        /// when the faulting thread's RSP points at the guard page.
        /// Dropped (disabled and freed) at thread exit.
        struct AltStack(*mut u8);

        fn alt_layout() -> std::alloc::Layout {
            std::alloc::Layout::from_size_align(ALT_STACK_SIZE, 16).expect("alt stack layout")
        }

        impl Drop for AltStack {
            fn drop(&mut self) {
                unsafe {
                    let ss = os::StackT {
                        ss_sp: std::ptr::null_mut(),
                        ss_flags: os::SS_DISABLE,
                        ss_size: 0,
                    };
                    os::sigaltstack(&ss, std::ptr::null_mut());
                    std::alloc::dealloc(self.0, alt_layout());
                }
            }
        }

        thread_local! {
            static ALT_STACK: RefCell<Option<AltStack>> = const { RefCell::new(None) };
        }

        pub(super) fn ensure_signal_setup() {
            install_handler();
            ALT_STACK.with(|slot| {
                let mut slot = slot.borrow_mut();
                if slot.is_none() {
                    unsafe {
                        let mem = std::alloc::alloc(alt_layout());
                        assert!(!mem.is_null(), "mpisim: alt stack allocation failed");
                        let ss = os::StackT { ss_sp: mem, ss_flags: 0, ss_size: ALT_STACK_SIZE };
                        let rc = os::sigaltstack(&ss, std::ptr::null_mut());
                        assert_eq!(rc, 0, "mpisim: sigaltstack failed");
                        *slot = Some(AltStack(mem));
                    }
                }
            });
        }
    }

    #[cfg(not(target_os = "linux"))]
    mod stack {
        //! Fallback for non-Linux unix targets: plain heap stacks with
        //! canary-only overflow detection (the pre-guard behavior).
        //! `Wait::StackOverflow` is never produced here.
        use std::alloc::Layout;

        pub(super) struct StackMem {
            base: *mut u8,
        }

        unsafe impl Send for StackMem {}

        fn layout() -> Layout {
            Layout::from_size_align(super::STACK_SIZE, 16).expect("fiber stack layout")
        }

        impl StackMem {
            pub(super) fn lo(&self) -> *mut u8 {
                self.base
            }
            pub(super) fn hi(&self) -> *mut u8 {
                unsafe { self.base.add(super::STACK_SIZE) }
            }
        }

        impl Drop for StackMem {
            fn drop(&mut self) {
                unsafe { std::alloc::dealloc(self.base, layout()) }
            }
        }

        pub(super) fn acquire() -> StackMem {
            let base = unsafe { std::alloc::alloc(layout()) };
            assert!(!base.is_null(), "mpisim: fiber stack allocation failed");
            StackMem { base }
        }

        pub(super) fn release(stack: StackMem) {
            drop(stack);
        }

        pub(super) fn quarantine(stack: StackMem) {
            drop(stack);
        }

        pub(super) fn enter_fiber(_stack: &StackMem) {}
        pub(super) fn leave_fiber() {}
        pub(super) fn ensure_signal_setup() {}
    }

    /// A suspended rank: its stack plus the saved stack pointer.
    pub(super) struct Fiber {
        /// `None` only after an overflow quarantined the mapping.
        stack: Option<stack::StackMem>,
        rsp: *mut u8,
        // Kept alive (stable address) until the fiber finishes; the
        // trampoline reads it through a raw pointer planted in the
        // initial frame.
        _entry: Box<EntryData>,
        finished: bool,
    }

    // SAFETY: a fiber is only ever run by one worker at a time (the
    // scheduler moves it between workers with a mutex in between, which
    // orders all accesses), and its body closure is built from
    // `&(dyn Fn(usize) + Sync)`.
    unsafe impl Send for Fiber {}

    impl Fiber {
        /// Build a fiber whose first resume runs `body` on a pooled
        /// guard-paged stack (heap stack on targets without the guard
        /// machinery). Pages fault in lazily; the canary word at the
        /// low end remains as a secondary overflow check behind the
        /// guard page.
        pub(super) fn new(body: Box<dyn FnOnce() + 'static>) -> Fiber {
            let stack = stack::acquire();
            let mut entry = Box::new(EntryData { body: Some(body) });
            let entry_fn: extern "C" fn(*mut EntryData) -> ! = fiber_entry;
            unsafe {
                (stack.lo() as *mut u64).write(STACK_CANARY);
                // Seed the frame `pcg_mpisim_fiber_switch` restores:
                // six callee-saved slots below a return slot aiming at
                // the trampoline, which forwards r12 (entry data) as the
                // first argument and calls r13 (fiber_entry).
                let top = stack.hi() as *mut u64;
                top.sub(1).write(0); // padding: trampoline enters at call-site alignment
                top.sub(2).write(pcg_mpisim_fiber_trampoline as *const () as usize as u64);
                top.sub(3).write(0); // rbp
                top.sub(4).write(0); // rbx
                top.sub(5).write(&mut *entry as *mut EntryData as u64); // r12
                top.sub(6).write(entry_fn as usize as u64); // r13
                top.sub(7).write(0); // r14
                top.sub(8).write(0); // r15
                Fiber {
                    stack: Some(stack),
                    rsp: top.sub(8) as *mut u8,
                    _entry: entry,
                    finished: false,
                }
            }
        }

        /// Run the fiber until it yields or finishes.
        ///
        /// Not inlined for the same TLS-address reason as `yield_fiber`:
        /// both `CURRENT` accesses here are on the worker's own thread
        /// (a worker's saved context is only ever re-entered from its
        /// own TLS pair), but an inlined copy inside a caller's loop
        /// could still merge with fiber-side accesses.
        #[inline(never)]
        pub(super) fn resume(&mut self) -> Wait {
            debug_assert!(!self.finished, "resumed a finished fiber");
            let mut pair = SwitchPair {
                worker_rsp: std::ptr::null_mut(),
                fiber_rsp: self.rsp,
                reason: Wait::Done,
            };
            CURRENT.with(|c| c.set(&mut pair));
            // Publish the guard range for the SIGSEGV classifier (read
            // only from this thread's handler frames).
            stack::enter_fiber(self.stack.as_ref().expect("resumed a quarantined fiber"));
            unsafe {
                pcg_mpisim_fiber_switch(&mut pair.worker_rsp, pair.fiber_rsp);
            }
            stack::leave_fiber();
            CURRENT.with(|c| c.set(std::ptr::null_mut()));
            if matches!(pair.reason, Wait::StackOverflow) {
                // The fiber escaped through the rescue landing pad: its
                // frames (likely including the canary word) are trash
                // and abandoned callees may still point into them. The
                // mapping is quarantined, never reused or unmapped.
                self.finished = true;
                stack::quarantine(self.stack.take().expect("overflowed fiber without a stack"));
                return pair.reason;
            }
            unsafe {
                let lo = self.stack.as_ref().expect("live fiber without a stack").lo();
                assert_eq!(
                    (lo as *const u64).read(),
                    STACK_CANARY,
                    "mpisim: fiber stack overflow missed by the guard page (canary)"
                );
            }
            self.rsp = pair.fiber_rsp;
            if matches!(pair.reason, Wait::Done) {
                self.finished = true;
            }
            pair.reason
        }
    }

    impl Drop for Fiber {
        fn drop(&mut self) {
            // Normal scheduling drains every fiber to Done (even under
            // abort/cancel) before dropping it. A finished fiber's
            // mapping is clean and goes back to the pool; an unfinished
            // drop can only follow a scheduler-internal panic, in which
            // case the frames leak but the mapping is unmapped.
            if let Some(stack) = self.stack.take() {
                if self.finished {
                    stack::release(stack);
                }
            }
        }
    }
}

#[cfg(not(all(target_arch = "x86_64", unix)))]
mod fiber {
    //! Stub for targets without a context switch: `supported()` is
    //! false there, so none of this is reachable.
    use super::Wait;

    pub(super) const STACK_SIZE: usize = 1 << 21;

    pub(super) struct Fiber;

    impl Fiber {
        pub(super) fn new(_body: Box<dyn FnOnce() + 'static>) -> Fiber {
            unreachable!("fiber multiplexing is not supported on this target")
        }
        pub(super) fn resume(&mut self) -> Wait {
            unreachable!("fiber multiplexing is not supported on this target")
        }
    }

    pub(super) fn yield_fiber(_reason: Wait) {
        unreachable!("fiber multiplexing is not supported on this target")
    }

    pub(super) fn ensure_signal_setup() {}
}

/// Park the calling rank fiber; see [`fiber::yield_fiber`].
pub(crate) fn yield_fiber(reason: Wait) {
    fiber::yield_fiber(reason);
}

// ---- scheduler -------------------------------------------------------

enum RankSlot {
    /// Not started yet; no stack exists.
    Fresh,
    /// Suspended (ready or waiting); the stack lives here.
    Parked(fiber::Fiber),
    /// Currently running on some worker.
    Active,
    /// Ran to completion.
    Done,
}

/// A rank parked on a compute token (or the hybrid admission gate).
struct TokenWait {
    rank: usize,
    gate: bool,
    clock: f64,
}

struct SchedState {
    /// Runnable ranks, FIFO. Initially all ranks in rank order.
    ready: VecDeque<usize>,
    slots: Vec<RankSlot>,
    /// `Some((src, tag, clock))` iff the rank is parked on its own
    /// mailbox, with its virtual clock at park time.
    mailbox_wait: Vec<Option<(Option<usize>, u32, f64)>>,
    /// Ranks parked waiting for a compute token, FIFO.
    token_wait: VecDeque<TokenWait>,
    finished: usize,
    size: usize,
    /// A deadlock has already been reported for this world.
    deadlocked: bool,
}

impl SchedState {
    /// Move every parked waiter to the ready queue (abort/cancel).
    fn wake_all(&mut self) {
        for rank in 0..self.size {
            if self.mailbox_wait[rank].take().is_some() {
                self.ready.push_back(rank);
            }
        }
        while let Some(w) = self.token_wait.pop_front() {
            self.ready.push_back(w.rank);
        }
    }

    /// Wait-for-graph quiescence check, called after filing a waiter.
    ///
    /// Under the scheduler lock, if no rank is runnable (`ready` empty,
    /// and every non-finished rank is filed as a waiter — Fresh ranks
    /// always sit in `ready`, Active ranks are not filed), no future
    /// wakeup can occur: a deposit always precedes its
    /// `notify_mailbox`, a token release always precedes its
    /// `notify_token`, and both happen before the sender can park, so
    /// any event that raced the filing re-probe would have re-readied
    /// someone. That makes quiescence a *state* property of the virtual
    /// execution — deterministic across worker counts and shard
    /// geometries — not a timing heuristic. Returns the per-rank
    /// diagnostics to fail the world with.
    fn deadlock_report(&mut self) -> Option<String> {
        if self.deadlocked || !self.ready.is_empty() {
            return None;
        }
        let parked =
            self.mailbox_wait.iter().filter(|w| w.is_some()).count() + self.token_wait.len();
        if parked == 0 || self.finished + parked != self.size {
            return None;
        }
        self.deadlocked = true;
        let live = self.size - self.finished;
        let mut msg = format!(
            "wait-for-graph quiescent: all {live} live ranks of {} blocked with no runnable sender",
            self.size
        );
        for rank in 0..self.size {
            use std::fmt::Write;
            if let Some((src, tag, clock)) = self.mailbox_wait[rank] {
                match src {
                    Some(s) => {
                        let _ = write!(msg, "; rank {rank} waits recv(src={s}, tag={tag}) at t={clock}");
                    }
                    None => {
                        let _ = write!(msg, "; rank {rank} waits recv(src=any, tag={tag}) at t={clock}");
                    }
                }
            } else if let Some(w) = self.token_wait.iter().find(|w| w.rank == rank) {
                let what = if w.gate { "compute-admission gate" } else { "compute token" };
                let _ = write!(msg, "; rank {rank} waits {what} at t={}", w.clock);
            }
        }
        Some(msg)
    }
}

/// Per-run scheduler for one multiplexed world. Owned by `WorldShared`.
pub(crate) struct Sched {
    pub(crate) workers: usize,
    state: Mutex<SchedState>,
    ready_cv: Condvar,
}

impl Sched {
    pub(crate) fn new(size: usize, workers: usize) -> Sched {
        Sched {
            workers: workers.max(1),
            state: Mutex::new(SchedState {
                ready: (0..size).collect(),
                slots: (0..size).map(|_| RankSlot::Fresh).collect(),
                mailbox_wait: vec![None; size],
                token_wait: VecDeque::new(),
                finished: 0,
                size,
                deadlocked: false,
            }),
            ready_cv: Condvar::new(),
        }
    }

    /// A deposit landed in `dst`'s mailbox: wake it if parked there.
    pub(crate) fn notify_mailbox(&self, dst: usize) {
        let mut st = self.state.lock();
        if st.mailbox_wait[dst].take().is_some() {
            st.ready.push_back(dst);
            drop(st);
            self.ready_cv.notify_one();
        }
    }

    /// A compute token was released: wake one token waiter (gate
    /// waiters share the semaphore, so they share the queue).
    pub(crate) fn notify_token(&self) {
        let mut st = self.state.lock();
        if let Some(w) = st.token_wait.pop_front() {
            st.ready.push_back(w.rank);
            drop(st);
            self.ready_cv.notify_one();
        }
    }

    /// Abort/cancel: wake every parked fiber so it can observe the
    /// condition and unwind.
    pub(crate) fn wake_all(&self) {
        let mut st = self.state.lock();
        st.wake_all();
        drop(st);
        self.ready_cv.notify_all();
    }
}

fn cancel_requested(shared: &WorldShared) -> bool {
    shared.cancel.as_ref().is_some_and(|t| t.is_cancelled())
}

/// One worker's scheduling loop: resume runnable ranks until every rank
/// in the world has finished. Runs on a thread that already has the
/// candidate's usage sink and cancel token installed.
pub(crate) fn worker_loop(shared: &WorldShared, body: &(dyn Fn(usize) + Sync)) {
    let sched = shared.sched.as_ref().expect("worker_loop on a non-multiplexed world");
    // Every thread that can resume fibers needs the SIGSEGV classifier
    // (process-wide, once) and its own sigaltstack before the first
    // resume; worker_loop is the common entry for cold mux workers and
    // warm team threads alike.
    fiber::ensure_signal_setup();
    loop {
        // Pick the next runnable rank.
        let (rank, parked) = {
            let mut st = sched.state.lock();
            loop {
                if st.finished == st.size {
                    return;
                }
                if let Some(rank) = st.ready.pop_front() {
                    let slot = std::mem::replace(&mut st.slots[rank], RankSlot::Active);
                    let parked = match slot {
                        RankSlot::Fresh => None,
                        RankSlot::Parked(f) => Some(f),
                        RankSlot::Active | RankSlot::Done => {
                            unreachable!("rank {rank} on ready queue while active/done")
                        }
                    };
                    break (rank, parked);
                }
                if cancel_requested(shared) {
                    st.wake_all();
                    if !st.ready.is_empty() {
                        continue;
                    }
                }
                match &shared.cancel {
                    Some(_) => {
                        let _ = sched.ready_cv.wait_for(&mut st, CANCEL_TICK);
                    }
                    None => sched.ready_cv.wait(&mut st),
                }
            }
        };

        let mut fib = match parked {
            Some(f) => f,
            None => {
                // First resume: give the rank a stack. The lifetime
                // erasure is sound because worker_loop only returns
                // after every fiber has finished and been dropped, and
                // the launching frame (which owns `body` and `shared`)
                // outlives all workers.
                let closure: Box<dyn FnOnce() + '_> = Box::new(move || body(rank));
                let closure: Box<dyn FnOnce() + 'static> =
                    unsafe { std::mem::transmute(closure) };
                fiber::Fiber::new(closure)
            }
        };

        let reason = fib.resume();

        let mut st = sched.state.lock();
        match reason {
            Wait::Done => {
                st.slots[rank] = RankSlot::Done;
                st.finished += 1;
                if st.finished == st.size {
                    drop(st);
                    // Everyone still picking/waiting must observe
                    // completion and return.
                    sched.ready_cv.notify_all();
                }
                drop(fib);
            }
            Wait::Mailbox { src, tag, clock } => {
                st.slots[rank] = RankSlot::Parked(fib);
                // Re-probe under the scheduler lock: any deposit that
                // raced with the fiber switching out is either visible
                // now, or its notify_mailbox is ordered after us and
                // will find the filed waiter.
                let mb = &shared.mailboxes[rank];
                if mb.probe(src, tag) || mb.is_aborted() || cancel_requested(shared) {
                    st.ready.push_back(rank);
                    drop(st);
                    sched.ready_cv.notify_one();
                } else {
                    st.mailbox_wait[rank] = Some((src, tag, clock));
                    maybe_fail_deadlock(st, shared);
                }
            }
            Wait::Token { gate, clock } => {
                st.slots[rank] = RankSlot::Parked(fib);
                if shared.tokens.available() > 0
                    || shared.tokens.is_aborted()
                    || cancel_requested(shared)
                {
                    st.ready.push_back(rank);
                    drop(st);
                    sched.ready_cv.notify_one();
                } else {
                    st.token_wait.push_back(TokenWait { rank, gate, clock });
                    maybe_fail_deadlock(st, shared);
                }
            }
            Wait::StackOverflow => {
                // The fiber escaped through the guard-page landing pad;
                // its rank can never produce a result. Record the
                // verdict and abort the world so every other rank
                // unwinds instead of waiting on the dead rank forever.
                STACK_OVERFLOWS_CAUGHT.fetch_add(1, Ordering::Relaxed);
                st.slots[rank] = RankSlot::Done;
                st.finished += 1;
                drop(st);
                let _ = shared.overflow.set(format!(
                    "rank {rank}: fiber stack overflow caught by the guard page \
                     (stack limit {} KiB); stack quarantined",
                    fiber::STACK_SIZE >> 10
                ));
                shared.abort();
                drop(fib);
            }
        }
    }
}

/// Run the wait-for-graph check after filing a waiter; on quiescence,
/// record the deadlock verdict (first reporter wins) and abort the
/// world so every parked rank wakes and unwinds. Consumes the lock
/// guard: the abort path must not hold the scheduler lock while taking
/// mailbox/semaphore locks.
fn maybe_fail_deadlock(mut st: parking_lot::MutexGuard<'_, SchedState>, shared: &WorldShared) {
    if !deadlock_detection() || cancel_requested(shared) || shared.tokens.is_aborted() {
        return;
    }
    let Some(report) = st.deadlock_report() else { return };
    drop(st);
    DEADLOCKS_DETECTED.fetch_add(1, Ordering::Relaxed);
    let _ = shared.deadlock.set(report);
    shared.abort();
}

/// Transient multiplexed execution: spawn the worker threads for one
/// run (the warm path keeps them alive in a team instead).
pub(crate) fn run_multiplexed(shared: &WorldShared, body: &(dyn Fn(usize) + Sync)) {
    let sched = shared.sched.as_ref().expect("run_multiplexed without a scheduler");
    let sink = usage::current_sink();
    let token = cancel::current_token();
    std::thread::scope(|scope| {
        for w in 0..sched.workers {
            let sink = sink.clone();
            let token = token.clone();
            std::thread::Builder::new()
                .name(format!("mpisim-mux-{w}"))
                .stack_size(1 << 21)
                .spawn_scoped(scope, move || {
                    let _usage = usage::install_sink(sink);
                    let _cancel = cancel::install_token(token);
                    worker_loop(shared, body);
                })
                .expect("failed to spawn mux worker");
        }
    });
}
