//! Rank-multiplexing cooperative scheduler.
//!
//! Thread-per-rank execution spawns one OS thread per simulated rank,
//! which makes the paper's 512-rank sweep column cost 512 spawns plus a
//! condvar storm per run on a machine with a few dozen cores. This
//! module runs the same rank programs as **stackful fibers** multiplexed
//! onto `W ≤ ~2×cores` worker threads: a rank that blocks in
//! `recv`/token acquisition parks its continuation (a saved stack) in a
//! blocked-rank queue instead of parking an OS thread, and a worker
//! resumes the next runnable rank.
//!
//! Scheduling is *run-to-block*: fibers yield only at the exact points
//! where the thread-per-rank path would block on a condvar (mailbox
//! waits and compute-token waits). Virtual time is governed solely by
//! [`crate::CostModel`] arithmetic on message metadata, which is
//! identical in both execution paths, so simulation records are
//! byte-identical to thread-per-rank at any worker count.
//!
//! ## Wakeup protocol
//!
//! All scheduler state sits behind one mutex. A rank only ever waits on
//! its *own* mailbox, so mailbox wakeups are keyed by rank: a sender
//! deposits (mailbox lock, dropped) and then notifies the scheduler
//! (scheduler lock). The lost-wakeup race — a deposit landing between a
//! fiber's failed `try_take` and the worker filing it as blocked — is
//! closed by the worker re-probing the wait condition *under the
//! scheduler lock* after the fiber has switched out: deposits are
//! ordered either before the probe (rank goes straight back to ready)
//! or after it (the sender's notify finds the filed waiter). No path
//! holds a mailbox or semaphore lock while taking the scheduler lock,
//! so the two lock orders never form a cycle.
//!
//! ## Cancellation and abort
//!
//! Idle workers tick at [`CANCEL_TICK`] when the launching candidate
//! has a cancel token, and on observing a kill wake every parked fiber;
//! resumed fibers hit their cancel check and unwind with the marker,
//! exactly like parked rank threads do. `WorldShared::abort` likewise
//! wakes all parked fibers so they observe the abort and unwind. The
//! scheduler only terminates once every rank has run to completion, so
//! fibers are never dropped mid-stack in normal operation.

use crate::sync::CANCEL_TICK;
use crate::world::WorldShared;
use parking_lot::{Condvar, Mutex};
use pcg_core::{cancel, usage, warm};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

// ---- policy ----------------------------------------------------------

/// How worlds choose between thread-per-rank and multiplexed execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Multiplex oversubscribed worlds (`ranks > workers()`) when the
    /// warm path is enabled (`PCG_COLD=1` restores thread-per-rank).
    Auto,
    /// Always thread-per-rank (the A/B baseline).
    ForceThreads,
    /// Multiplex every multi-rank world, however small (tests/benches).
    ForceMux,
}

static MODE: AtomicU8 = AtomicU8::new(0);

/// Set the process-global execution mode (benches and tests; the
/// default is [`ExecMode::Auto`]).
pub fn set_exec_mode(mode: ExecMode) {
    MODE.store(mode as u8, Ordering::Release);
}

/// The current execution mode.
pub fn exec_mode() -> ExecMode {
    match MODE.load(Ordering::Acquire) {
        1 => ExecMode::ForceThreads,
        2 => ExecMode::ForceMux,
        _ => ExecMode::Auto,
    }
}

/// Whether fiber multiplexing is implemented for this target.
pub fn supported() -> bool {
    cfg!(all(target_arch = "x86_64", unix))
}

/// Number of multiplexer worker threads: `PCG_MPI_WORKERS` if set to a
/// positive integer, else twice the available parallelism (min 2). Read
/// once per process.
pub fn workers() -> usize {
    static W: OnceLock<usize> = OnceLock::new();
    *W.get_or_init(|| {
        if let Ok(v) = std::env::var("PCG_MPI_WORKERS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        (2 * cores).max(2)
    })
}

/// Whether a world of `ranks` ranks runs multiplexed under the current
/// mode.
pub fn should_multiplex(ranks: usize) -> bool {
    if !supported() {
        return false;
    }
    match exec_mode() {
        ExecMode::ForceThreads => false,
        ExecMode::ForceMux => ranks > 1,
        ExecMode::Auto => warm::enabled() && ranks > workers(),
    }
}

/// OS threads a world of `ranks` ranks actually occupies under the
/// current mode — the quantity the lease layer budgets by.
pub fn os_threads_for(ranks: usize) -> usize {
    if should_multiplex(ranks) {
        workers()
    } else {
        ranks
    }
}

// ---- stats -----------------------------------------------------------

static RANKS_MULTIPLEXED: AtomicU64 = AtomicU64::new(0);
static BYTES_ZERO_COPIED: AtomicU64 = AtomicU64::new(0);

/// Process-wide multiplexer counters (monotonic; the harness snapshots
/// and diffs them per evaluation, like the lease stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedStats {
    /// Simulated ranks that ran as fibers instead of OS threads.
    pub ranks_multiplexed: u64,
    /// Payload bytes forwarded or moved by reference in transport
    /// (collective hops, moved sends) instead of being copied.
    pub bytes_zero_copied: u64,
}

/// Snapshot the counters.
pub fn stats() -> SchedStats {
    SchedStats {
        ranks_multiplexed: RANKS_MULTIPLEXED.load(Ordering::Relaxed),
        bytes_zero_copied: BYTES_ZERO_COPIED.load(Ordering::Relaxed),
    }
}

pub(crate) fn note_ranks_multiplexed(n: u64) {
    RANKS_MULTIPLEXED.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn note_zero_copy(bytes: usize) {
    BYTES_ZERO_COPIED.fetch_add(bytes as u64, Ordering::Relaxed);
}

// ---- yield reasons ---------------------------------------------------

/// Why a fiber switched back to its worker.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Wait {
    /// Blocked receiving on the rank's own mailbox.
    Mailbox { src: Option<usize>, tag: u32 },
    /// Blocked acquiring a compute token.
    Token,
    /// The rank body ran to completion (or unwound into the fiber's
    /// catch).
    Done,
}

// ---- fibers ----------------------------------------------------------

#[cfg(all(target_arch = "x86_64", unix))]
mod fiber {
    use super::Wait;
    use std::alloc::Layout;
    use std::cell::Cell;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Matches the thread-per-rank path's reduced rank-thread stacks.
    const STACK_SIZE: usize = 1 << 21;
    const STACK_CANARY: u64 = 0xF1BE_75AC_CA4A_11D8;

    // Minimal SysV x86_64 context switch: save the callee-saved integer
    // registers and the stack pointer, load the target's. Everything
    // else is caller-saved at the (extern "C") call boundary. `save`
    // receives the suspended context's rsp; `to` is the context to
    // enter.
    std::arch::global_asm!(
        r#"
        .text
        .globl pcg_mpisim_fiber_switch
        .type pcg_mpisim_fiber_switch, @function
pcg_mpisim_fiber_switch:
        push rbp
        push rbx
        push r12
        push r13
        push r14
        push r15
        mov [rdi], rsp
        mov rsp, rsi
        pop r15
        pop r14
        pop r13
        pop r12
        pop rbx
        pop rbp
        ret
        .size pcg_mpisim_fiber_switch, . - pcg_mpisim_fiber_switch

        .globl pcg_mpisim_fiber_trampoline
        .type pcg_mpisim_fiber_trampoline, @function
pcg_mpisim_fiber_trampoline:
        mov rdi, r12
        and rsp, -16
        call r13
        ud2
        .size pcg_mpisim_fiber_trampoline, . - pcg_mpisim_fiber_trampoline
        "#
    );

    extern "C" {
        fn pcg_mpisim_fiber_switch(save: *mut *mut u8, to: *mut u8);
        fn pcg_mpisim_fiber_trampoline();
    }

    /// The live link between a worker and the fiber it is running,
    /// stack-allocated in `resume` and published through worker TLS so
    /// `yield_fiber` (called from arbitrarily deep in the rank body)
    /// can find the worker's saved context.
    struct SwitchPair {
        worker_rsp: *mut u8,
        fiber_rsp: *mut u8,
        reason: Wait,
    }

    thread_local! {
        static CURRENT: Cell<*mut SwitchPair> = const { Cell::new(std::ptr::null_mut()) };
    }

    struct EntryData {
        body: Option<Box<dyn FnOnce() + 'static>>,
    }

    extern "C" fn fiber_entry(data: *mut EntryData) -> ! {
        // Contain every unwind inside the fiber: panics (candidate
        // failures, abort cascades, cancel markers) are already handled
        // by the rank body's own catch in `world.rs`; this outer catch
        // only guarantees nothing ever unwinds across the switch
        // boundary, where there is no frame to unwind into.
        let body = unsafe { (*data).body.take().expect("fiber body taken twice") };
        let _ = catch_unwind(AssertUnwindSafe(body));
        unsafe { switch_out_done() }
    }

    // `#[inline(never)]` on everything touching `CURRENT` from fiber
    // context is load-bearing: LLVM models a thread-local's address as
    // constant within a function body (a function cannot change threads
    // under normal execution), so if these reads inline into a caller
    // that spans a context switch — e.g. a blocking-recv retry loop that
    // yields more than once — the hoisted address keeps pointing at the
    // *previous* worker thread's cell after the fiber migrates, which
    // that worker has already nulled. Keeping each access inside its own
    // uninlinable call recomputes the TLS address on whatever thread the
    // fiber currently runs on.
    #[inline(never)]
    unsafe fn switch_out_done() -> ! {
        let pair = CURRENT.with(|c| c.get());
        assert!(!pair.is_null(), "mpisim: fiber finishing without a worker");
        (*pair).reason = Wait::Done;
        let mut scratch: *mut u8 = std::ptr::null_mut();
        pcg_mpisim_fiber_switch(&mut scratch, (*pair).worker_rsp);
        unreachable!("finished fiber resumed")
    }

    /// Park the calling fiber with `reason`; returns when a worker
    /// resumes it. Must only be called from inside a fiber.
    #[inline(never)]
    pub(super) fn yield_fiber(reason: Wait) {
        let pair = CURRENT.with(|c| c.get());
        assert!(!pair.is_null(), "mpisim: blocking yield outside a rank fiber");
        unsafe {
            (*pair).reason = reason;
            let worker = (*pair).worker_rsp;
            // After this returns we may be on a different worker thread;
            // `pair` points into the *previous* resume's stack and must
            // not be touched again.
            pcg_mpisim_fiber_switch(&mut (*pair).fiber_rsp, worker);
        }
    }

    /// A suspended rank: its stack plus the saved stack pointer.
    pub(super) struct Fiber {
        stack: *mut u8,
        rsp: *mut u8,
        // Kept alive (stable address) until the fiber finishes; the
        // trampoline reads it through a raw pointer planted in the
        // initial frame.
        _entry: Box<EntryData>,
        finished: bool,
    }

    // SAFETY: a fiber is only ever run by one worker at a time (the
    // scheduler moves it between workers with a mutex in between, which
    // orders all accesses), and its body closure is built from
    // `&(dyn Fn(usize) + Sync)`.
    unsafe impl Send for Fiber {}

    fn stack_layout() -> Layout {
        Layout::from_size_align(STACK_SIZE, 16).expect("fiber stack layout")
    }

    impl Fiber {
        /// Build a fiber whose first resume runs `body` on a fresh
        /// stack. The stack is allocated uninitialized so the pages are
        /// faulted in lazily; there is no guard page (the canary word at
        /// the low end detects gross overflows after the fact).
        pub(super) fn new(body: Box<dyn FnOnce() + 'static>) -> Fiber {
            let stack = unsafe { std::alloc::alloc(stack_layout()) };
            assert!(!stack.is_null(), "mpisim: fiber stack allocation failed");
            let mut entry = Box::new(EntryData { body: Some(body) });
            let entry_fn: extern "C" fn(*mut EntryData) -> ! = fiber_entry;
            unsafe {
                (stack as *mut u64).write(STACK_CANARY);
                // Seed the frame `pcg_mpisim_fiber_switch` restores:
                // six callee-saved slots below a return slot aiming at
                // the trampoline, which forwards r12 (entry data) as the
                // first argument and calls r13 (fiber_entry).
                let top = stack.add(STACK_SIZE) as *mut u64;
                top.sub(1).write(0); // padding: trampoline enters at call-site alignment
                top.sub(2).write(pcg_mpisim_fiber_trampoline as *const () as usize as u64);
                top.sub(3).write(0); // rbp
                top.sub(4).write(0); // rbx
                top.sub(5).write(&mut *entry as *mut EntryData as u64); // r12
                top.sub(6).write(entry_fn as usize as u64); // r13
                top.sub(7).write(0); // r14
                top.sub(8).write(0); // r15
                Fiber { stack, rsp: top.sub(8) as *mut u8, _entry: entry, finished: false }
            }
        }

        /// Run the fiber until it yields or finishes.
        ///
        /// Not inlined for the same TLS-address reason as `yield_fiber`:
        /// both `CURRENT` accesses here are on the worker's own thread
        /// (a worker's saved context is only ever re-entered from its
        /// own TLS pair), but an inlined copy inside a caller's loop
        /// could still merge with fiber-side accesses.
        #[inline(never)]
        pub(super) fn resume(&mut self) -> Wait {
            debug_assert!(!self.finished, "resumed a finished fiber");
            let mut pair = SwitchPair {
                worker_rsp: std::ptr::null_mut(),
                fiber_rsp: self.rsp,
                reason: Wait::Done,
            };
            CURRENT.with(|c| c.set(&mut pair));
            unsafe {
                pcg_mpisim_fiber_switch(&mut pair.worker_rsp, pair.fiber_rsp);
            }
            CURRENT.with(|c| c.set(std::ptr::null_mut()));
            unsafe {
                assert_eq!(
                    (self.stack as *const u64).read(),
                    STACK_CANARY,
                    "mpisim: fiber stack overflow detected"
                );
            }
            self.rsp = pair.fiber_rsp;
            if matches!(pair.reason, Wait::Done) {
                self.finished = true;
            }
            pair.reason
        }
    }

    impl Drop for Fiber {
        fn drop(&mut self) {
            // Normal scheduling drains every fiber to Done (even under
            // abort/cancel) before dropping it; an unfinished drop can
            // only follow a scheduler-internal panic, in which case the
            // frames on the stack leak but the stack itself is freed.
            unsafe { std::alloc::dealloc(self.stack, stack_layout()) }
        }
    }
}

#[cfg(not(all(target_arch = "x86_64", unix)))]
mod fiber {
    //! Stub for targets without a context switch: `supported()` is
    //! false there, so none of this is reachable.
    use super::Wait;

    pub(super) struct Fiber;

    impl Fiber {
        pub(super) fn new(_body: Box<dyn FnOnce() + 'static>) -> Fiber {
            unreachable!("fiber multiplexing is not supported on this target")
        }
        pub(super) fn resume(&mut self) -> Wait {
            unreachable!("fiber multiplexing is not supported on this target")
        }
    }

    pub(super) fn yield_fiber(_reason: Wait) {
        unreachable!("fiber multiplexing is not supported on this target")
    }
}

/// Park the calling rank fiber; see [`fiber::yield_fiber`].
pub(crate) fn yield_fiber(reason: Wait) {
    fiber::yield_fiber(reason);
}

// ---- scheduler -------------------------------------------------------

enum RankSlot {
    /// Not started yet; no stack exists.
    Fresh,
    /// Suspended (ready or waiting); the stack lives here.
    Parked(fiber::Fiber),
    /// Currently running on some worker.
    Active,
    /// Ran to completion.
    Done,
}

struct SchedState {
    /// Runnable ranks, FIFO. Initially all ranks in rank order.
    ready: VecDeque<usize>,
    slots: Vec<RankSlot>,
    /// `Some((src, tag))` iff the rank is parked on its own mailbox.
    mailbox_wait: Vec<Option<(Option<usize>, u32)>>,
    /// Ranks parked waiting for a compute token, FIFO.
    token_wait: VecDeque<usize>,
    finished: usize,
    size: usize,
}

impl SchedState {
    /// Move every parked waiter to the ready queue (abort/cancel).
    fn wake_all(&mut self) {
        for rank in 0..self.size {
            if self.mailbox_wait[rank].take().is_some() {
                self.ready.push_back(rank);
            }
        }
        while let Some(rank) = self.token_wait.pop_front() {
            self.ready.push_back(rank);
        }
    }
}

/// Per-run scheduler for one multiplexed world. Owned by `WorldShared`.
pub(crate) struct Sched {
    pub(crate) workers: usize,
    state: Mutex<SchedState>,
    ready_cv: Condvar,
}

impl Sched {
    pub(crate) fn new(size: usize, workers: usize) -> Sched {
        Sched {
            workers: workers.max(1),
            state: Mutex::new(SchedState {
                ready: (0..size).collect(),
                slots: (0..size).map(|_| RankSlot::Fresh).collect(),
                mailbox_wait: vec![None; size],
                token_wait: VecDeque::new(),
                finished: 0,
                size,
            }),
            ready_cv: Condvar::new(),
        }
    }

    /// A deposit landed in `dst`'s mailbox: wake it if parked there.
    pub(crate) fn notify_mailbox(&self, dst: usize) {
        let mut st = self.state.lock();
        if st.mailbox_wait[dst].take().is_some() {
            st.ready.push_back(dst);
            drop(st);
            self.ready_cv.notify_one();
        }
    }

    /// A compute token was released: wake one token waiter.
    pub(crate) fn notify_token(&self) {
        let mut st = self.state.lock();
        if let Some(rank) = st.token_wait.pop_front() {
            st.ready.push_back(rank);
            drop(st);
            self.ready_cv.notify_one();
        }
    }

    /// Abort/cancel: wake every parked fiber so it can observe the
    /// condition and unwind.
    pub(crate) fn wake_all(&self) {
        let mut st = self.state.lock();
        st.wake_all();
        drop(st);
        self.ready_cv.notify_all();
    }
}

fn cancel_requested(shared: &WorldShared) -> bool {
    shared.cancel.as_ref().is_some_and(|t| t.is_cancelled())
}

/// One worker's scheduling loop: resume runnable ranks until every rank
/// in the world has finished. Runs on a thread that already has the
/// candidate's usage sink and cancel token installed.
pub(crate) fn worker_loop(shared: &WorldShared, body: &(dyn Fn(usize) + Sync)) {
    let sched = shared.sched.as_ref().expect("worker_loop on a non-multiplexed world");
    loop {
        // Pick the next runnable rank.
        let (rank, parked) = {
            let mut st = sched.state.lock();
            loop {
                if st.finished == st.size {
                    return;
                }
                if let Some(rank) = st.ready.pop_front() {
                    let slot = std::mem::replace(&mut st.slots[rank], RankSlot::Active);
                    let parked = match slot {
                        RankSlot::Fresh => None,
                        RankSlot::Parked(f) => Some(f),
                        RankSlot::Active | RankSlot::Done => {
                            unreachable!("rank {rank} on ready queue while active/done")
                        }
                    };
                    break (rank, parked);
                }
                if cancel_requested(shared) {
                    st.wake_all();
                    if !st.ready.is_empty() {
                        continue;
                    }
                }
                match &shared.cancel {
                    Some(_) => {
                        let _ = sched.ready_cv.wait_for(&mut st, CANCEL_TICK);
                    }
                    None => sched.ready_cv.wait(&mut st),
                }
            }
        };

        let mut fib = match parked {
            Some(f) => f,
            None => {
                // First resume: give the rank a stack. The lifetime
                // erasure is sound because worker_loop only returns
                // after every fiber has finished and been dropped, and
                // the launching frame (which owns `body` and `shared`)
                // outlives all workers.
                let closure: Box<dyn FnOnce() + '_> = Box::new(move || body(rank));
                let closure: Box<dyn FnOnce() + 'static> =
                    unsafe { std::mem::transmute(closure) };
                fiber::Fiber::new(closure)
            }
        };

        let reason = fib.resume();

        let mut st = sched.state.lock();
        match reason {
            Wait::Done => {
                st.slots[rank] = RankSlot::Done;
                st.finished += 1;
                if st.finished == st.size {
                    drop(st);
                    // Everyone still picking/waiting must observe
                    // completion and return.
                    sched.ready_cv.notify_all();
                }
                drop(fib);
            }
            Wait::Mailbox { src, tag } => {
                st.slots[rank] = RankSlot::Parked(fib);
                // Re-probe under the scheduler lock: any deposit that
                // raced with the fiber switching out is either visible
                // now, or its notify_mailbox is ordered after us and
                // will find the filed waiter.
                let mb = &shared.mailboxes[rank];
                if mb.probe(src, tag) || mb.is_aborted() || cancel_requested(shared) {
                    st.ready.push_back(rank);
                    drop(st);
                    sched.ready_cv.notify_one();
                } else {
                    st.mailbox_wait[rank] = Some((src, tag));
                }
            }
            Wait::Token => {
                st.slots[rank] = RankSlot::Parked(fib);
                if shared.tokens.available() > 0
                    || shared.tokens.is_aborted()
                    || cancel_requested(shared)
                {
                    st.ready.push_back(rank);
                    drop(st);
                    sched.ready_cv.notify_one();
                } else {
                    st.token_wait.push_back(rank);
                }
            }
        }
    }
}

/// Transient multiplexed execution: spawn the worker threads for one
/// run (the warm path keeps them alive in a team instead).
pub(crate) fn run_multiplexed(shared: &WorldShared, body: &(dyn Fn(usize) + Sync)) {
    let sched = shared.sched.as_ref().expect("run_multiplexed without a scheduler");
    let sink = usage::current_sink();
    let token = cancel::current_token();
    std::thread::scope(|scope| {
        for w in 0..sched.workers {
            let sink = sink.clone();
            let token = token.clone();
            std::thread::Builder::new()
                .name(format!("mpisim-mux-{w}"))
                .stack_size(1 << 21)
                .spawn_scoped(scope, move || {
                    let _usage = usage::install_sink(sink);
                    let _cancel = cancel::install_token(token);
                    worker_loop(shared, body);
                })
                .expect("failed to spawn mux worker");
        }
    });
}
