//! The Hockney α–β communication cost model.
//!
//! A message of `b` bytes between two ranks costs `α + b/β` seconds of
//! virtual time, with separate (α, β) pairs for intra-node (shared
//! memory) and inter-node (network) paths. Node membership is derived
//! from `ranks_per_node`, mirroring the paper's "one rank per physical
//! core, 64 cores per node" placement.

/// Communication and compute-scaling parameters for a [`crate::World`].
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Per-message latency between ranks on the same node (seconds).
    pub latency_intra: f64,
    /// Bandwidth between ranks on the same node (bytes/second).
    pub bandwidth_intra: f64,
    /// Per-message latency across nodes (seconds).
    pub latency_inter: f64,
    /// Bandwidth across nodes (bytes/second).
    pub bandwidth_inter: f64,
    /// Sender-side overhead charged per send (seconds).
    pub send_overhead: f64,
    /// Receiver-side overhead charged per matched receive (seconds).
    pub recv_overhead: f64,
    /// How many consecutive ranks share a node.
    pub ranks_per_node: usize,
    /// Multiplier applied to measured compute segments. `0.0` makes
    /// virtual clocks fully deterministic (communication-only), which
    /// tests use.
    pub compute_scale: f64,
}

impl CostModel {
    /// EPYC-class cluster defaults: ~0.5 µs / 20 GB/s intra-node,
    /// ~1.8 µs / 12 GB/s inter-node (100 Gb/s class fabric), 64 ranks
    /// per node as in the paper's testbed.
    pub fn cluster() -> CostModel {
        CostModel {
            latency_intra: 0.5e-6,
            bandwidth_intra: 20e9,
            latency_inter: 1.8e-6,
            bandwidth_inter: 12e9,
            send_overhead: 0.2e-6,
            recv_overhead: 0.2e-6,
            ranks_per_node: 64,
            compute_scale: 1.0,
        }
    }

    /// Deterministic variant of [`CostModel::cluster`] with measured
    /// compute disabled; used by tests asserting exact virtual times.
    pub fn deterministic() -> CostModel {
        CostModel { compute_scale: 0.0, ..CostModel::cluster() }
    }

    /// A zero-cost model: all communication free, compute disabled.
    /// Useful for pure correctness tests.
    pub fn free() -> CostModel {
        CostModel {
            latency_intra: 0.0,
            bandwidth_intra: f64::INFINITY,
            latency_inter: 0.0,
            bandwidth_inter: f64::INFINITY,
            send_overhead: 0.0,
            recv_overhead: 0.0,
            ranks_per_node: 64,
            compute_scale: 0.0,
        }
    }

    /// The node index hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node.max(1)
    }

    /// Virtual-time cost of moving `bytes` from `src` to `dst`
    /// (excluding the per-call overheads).
    pub fn wire_time(&self, src: usize, dst: usize, bytes: usize) -> f64 {
        if src == dst {
            return 0.0;
        }
        let (lat, bw) = if self.node_of(src) == self.node_of(dst) {
            (self.latency_intra, self.bandwidth_intra)
        } else {
            (self.latency_inter, self.bandwidth_inter)
        };
        lat + bytes as f64 / bw
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intra_cheaper_than_inter() {
        let m = CostModel::cluster();
        let intra = m.wire_time(0, 1, 1 << 20);
        let inter = m.wire_time(0, 64, 1 << 20);
        assert!(intra < inter);
    }

    #[test]
    fn self_send_free() {
        let m = CostModel::cluster();
        assert_eq!(m.wire_time(3, 3, 1 << 30), 0.0);
    }

    #[test]
    fn node_mapping() {
        let m = CostModel::cluster();
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(63), 0);
        assert_eq!(m.node_of(64), 1);
        assert_eq!(m.node_of(511), 7);
    }

    #[test]
    fn bandwidth_term_scales_with_bytes() {
        let m = CostModel::cluster();
        let small = m.wire_time(0, 1, 8);
        let big = m.wire_time(0, 1, 8 << 20);
        assert!(big > small * 100.0);
    }

    #[test]
    fn free_model_is_zero() {
        let m = CostModel::free();
        assert_eq!(m.wire_time(0, 200, 1 << 20), 0.0);
    }
}
