//! The per-rank communicator handle.
//!
//! [`Comm`] is the `MPI_COMM_WORLD` analog each rank program receives.
//! Point-to-point operations move real data between rank threads and
//! advance virtual clocks per the world's [`crate::CostModel`].
//! Collectives are built on top of point-to-point with the classical
//! algorithms (binomial broadcast/reduce, recursive-doubling allreduce,
//! Hillis–Steele scan, ring allgather, dissemination barrier), so their
//! log-P virtual-time scaling emerges from the p2p model.
//!
//! ## Transport is zero-copy
//!
//! Payloads are `Arc`-shared ([`crate::Packet`]): the tree and ring
//! collectives forward the *same* buffer from hop to hop (a refcount
//! bump, counted in `bytes_zero_copied`), and receivers get
//! copy-on-write ownership — data is duplicated only when a rank
//! actually takes a mutable copy while another hop still holds the
//! buffer. Virtual time is charged by logical payload size, so the
//! sharing is invisible to the cost model.
//!
//! ## Two blocking disciplines
//!
//! On the thread-per-rank path, a blocked `recv`/token wait parks the
//! rank's OS thread on a condvar. On the multiplexed path
//! ([`crate::sched`]), the same wait parks the rank's *fiber* with the
//! scheduler and the worker thread runs another rank. Both paths
//! release the compute token on first block and reacquire it after, so
//! measured-compute accounting is identical.

use crate::mailbox::Envelope;
use crate::packet::{Elem, Packet, ReduceOp};
use crate::sched::{self, Wait};
use crate::world::WorldShared;
use pcg_core::{usage, ExecutionModel};
use std::cell::Cell;
use std::time::Instant;

/// Tags at or above this value are reserved for collectives.
pub const RESERVED_TAG_BASE: u32 = 0x4000_0000;

/// A rank's handle to the simulated world.
pub struct Comm<'w> {
    rank: usize,
    size: usize,
    shared: &'w WorldShared,
    clock: Cell<f64>,
    mark: Cell<Instant>,
    coll_seq: Cell<u32>,
    has_token: Cell<bool>,
}

impl<'w> Comm<'w> {
    pub(crate) fn new(rank: usize, size: usize, shared: &'w WorldShared) -> Comm<'w> {
        Comm {
            rank,
            size,
            shared,
            clock: Cell::new(0.0),
            mark: Cell::new(Instant::now()),
            coll_seq: Cell::new(0),
            has_token: Cell::new(false),
        }
    }

    /// This rank's id in `0..size()`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Current virtual time in seconds (the `MPI_Wtime` analog).
    pub fn clock(&self) -> f64 {
        self.flush_compute();
        self.clock.get()
    }

    /// Add `dt` seconds of modeled work to this rank's clock (used for
    /// explicitly modeled compute, e.g. in tests and the hybrid layer).
    pub fn advance(&self, dt: f64) {
        self.flush_compute();
        self.clock.set(self.clock.get() + dt.max(0.0));
    }

    // ---- token & clock internals -------------------------------------

    pub(crate) fn acquire_token(&self) {
        if self.shared.is_multiplexed() {
            // Fiber discipline: spin try_acquire/yield instead of
            // blocking the worker thread on the semaphore condvar.
            loop {
                if let Some(t) = &self.shared.cancel {
                    t.check();
                }
                if self.shared.tokens.is_aborted() {
                    abort_panic();
                }
                if self.shared.tokens.try_acquire() {
                    break;
                }
                sched::yield_fiber(Wait::Token { gate: false, clock: self.clock.get() });
            }
        } else if !self.shared.tokens.acquire() {
            abort_panic();
        }
        self.has_token.set(true);
        self.mark.set(Instant::now());
    }

    /// Enter a modeled compute section: (re)acquire the compute-admission
    /// token if this rank does not already hold one. On the fiber path the
    /// rank parks *cooperatively* with `Wait::Token { gate: true, .. }`, so
    /// mux workers never OS-block on the semaphore and the wait-for-graph
    /// deadlock detector sees gate-parked ranks as blocked waiters.
    pub fn compute_gate_enter(&self) {
        if self.has_token.get() {
            // Already admitted; just restart the wall-clock mark so only
            // time inside the gate is charged.
            self.mark.set(Instant::now());
            return;
        }
        if self.shared.is_multiplexed() {
            loop {
                if let Some(t) = &self.shared.cancel {
                    t.check();
                }
                if self.shared.tokens.is_aborted() {
                    abort_panic();
                }
                if self.shared.tokens.try_acquire() {
                    break;
                }
                sched::yield_fiber(Wait::Token { gate: true, clock: self.clock.get() });
            }
        } else if !self.shared.tokens.acquire() {
            abort_panic();
        }
        self.has_token.set(true);
        self.mark.set(Instant::now());
    }

    /// Leave a modeled compute section: fold the elapsed wall-clock into
    /// the virtual clock, then release the admission token so a
    /// gate-parked peer can run. Pairs with [`Comm::compute_gate_enter`].
    pub fn compute_gate_exit(&self) {
        self.flush_compute();
        self.release_token();
    }

    pub(crate) fn release_token(&self) {
        if self.has_token.replace(false) {
            self.shared.tokens.release();
            self.shared.notify_token();
        }
    }

    pub(crate) fn holds_token(&self) -> bool {
        self.has_token.get()
    }

    pub(crate) fn final_clock(&self) -> f64 {
        self.flush_compute();
        self.clock.get()
    }

    /// Fold real elapsed time since the last mark into the virtual clock
    /// (scaled), and reset the mark.
    fn flush_compute(&self) {
        let now = Instant::now();
        let dt = now.duration_since(self.mark.get()).as_secs_f64();
        self.mark.set(now);
        let scale = self.shared.cost.compute_scale;
        if scale > 0.0 {
            self.clock.set(self.clock.get() + dt * scale);
        }
    }

    fn check_alive(&self) {
        if self.shared.tokens.is_aborted() {
            abort_panic();
        }
    }

    fn next_coll_base(&self) -> u32 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq.wrapping_add(1) & 0x003F_FFFF);
        RESERVED_TAG_BASE + (seq << 6)
    }

    // ---- transport internals -----------------------------------------

    /// Charge send costs and deposit `packet` at `dst`. Every send path
    /// (fresh, moved, forwarded) funnels through here, so virtual-time
    /// arithmetic is identical regardless of how the buffer travels.
    fn send_packet(&self, dst: usize, tag: u32, packet: Packet) {
        usage::record(ExecutionModel::Mpi);
        self.check_alive();
        assert!(dst < self.size, "send to rank {dst} out of range (size {})", self.size);
        self.flush_compute();
        let bytes = packet.byte_len();
        let t = self.clock.get() + self.shared.cost.send_overhead;
        self.clock.set(t);
        let available_at = t + self.shared.cost.wire_time(self.rank, dst, bytes);
        self.shared.mailboxes[dst].deposit(Envelope {
            src: self.rank,
            tag,
            packet,
            available_at,
        });
        self.shared.notify_mailbox(dst);
    }

    /// Send an owned vector: the buffer is moved into the packet, never
    /// copied (for values the sender will not read again).
    fn send_vec<T: Elem>(&self, dst: usize, tag: u32, data: Vec<T>) {
        sched::note_zero_copy(data.len() * T::BYTES);
        self.send_packet(dst, tag, T::wrap(data));
    }

    /// Forward an in-flight buffer to the next hop of a collective: an
    /// `Arc` clone, not a data copy.
    fn forward(&self, dst: usize, tag: u32, packet: &Packet) {
        sched::note_zero_copy(packet.byte_len());
        self.send_packet(dst, tag, packet.clone());
    }

    /// Blocking receive of a raw envelope, with the token released
    /// while blocked and reacquired after. Both execution paths meet
    /// the same postcondition: clock advanced to
    /// `max(clock, available_at) + recv_overhead`.
    fn recv_envelope(&self, src: Option<usize>, tag: u32) -> Envelope {
        usage::record(ExecutionModel::Mpi);
        self.check_alive();
        if let Some(s) = src {
            assert!(s < self.size, "recv from rank {s} out of range (size {})", self.size);
        }
        self.flush_compute();
        let mut released = false;
        let got = if self.shared.is_multiplexed() {
            self.take_matching_mux(src, tag, &mut released)
        } else {
            self.shared.mailboxes[self.rank].take_matching(src, tag, &mut || {
                // Release the compute token before blocking so other
                // rank threads can run; `release_token` only touches
                // Cells and the semaphore, never the mailbox lock we
                // hold (and no scheduler exists on this path).
                if self.has_token.replace(false) {
                    self.shared.tokens.release();
                }
                released = true;
            })
        };
        let Some((env, _)) = got else { abort_panic() };
        if released {
            self.acquire_token();
        }
        let arrived = self.clock.get().max(env.available_at) + self.shared.cost.recv_overhead;
        self.clock.set(arrived);
        env
    }

    /// Fiber-mode receive loop: poll the mailbox, park with the
    /// scheduler on failure. Mirrors `Mailbox::take_matching` exactly —
    /// including releasing the token on first block only.
    fn take_matching_mux(
        &self,
        src: Option<usize>,
        tag: u32,
        released: &mut bool,
    ) -> Option<(Envelope, bool)> {
        let mb = &self.shared.mailboxes[self.rank];
        let mut blocked = false;
        loop {
            if let Some(t) = &self.shared.cancel {
                t.check();
            }
            if mb.is_aborted() {
                return None;
            }
            if let Some(env) = mb.try_take(src, tag) {
                return Some((env, blocked));
            }
            if !blocked {
                if self.has_token.replace(false) {
                    self.shared.tokens.release();
                    self.shared.notify_token();
                }
                *released = true;
                blocked = true;
            }
            sched::yield_fiber(Wait::Mailbox { src, tag, clock: self.clock.get() });
        }
    }

    /// Receive a typed packet, panicking (and thus aborting the world)
    /// on a payload type mismatch, mirroring an MPI datatype error.
    fn recv_packet<T: Elem>(&self, src: Option<usize>, tag: u32) -> Packet {
        let env = self.recv_envelope(src, tag);
        if T::view(&env.packet).is_none() {
            panic!(
                "mpisim: recv type mismatch at rank {} (tag {tag}, from {})",
                self.rank, env.src
            );
        }
        env.packet
    }

    // ---- point to point ----------------------------------------------

    /// Eager (buffered, non-blocking completion) send of a typed slice.
    pub fn send<T: Elem>(&self, dst: usize, tag: u32, data: &[T]) {
        self.send_packet(dst, tag, T::wrap(data.to_vec()));
    }

    /// [`Comm::send`] for a buffer the sender is done with: the vector
    /// is moved into the packet, so the payload bytes are never copied
    /// (counted in the `bytes_zero_copied` stat). Semantically
    /// identical to `send` — same virtual-time charges, same matching —
    /// it only changes who owns the allocation.
    pub fn send_owned<T: Elem>(&self, dst: usize, tag: u32, data: Vec<T>) {
        self.send_vec(dst, tag, data);
    }

    /// Blocking receive of a typed slice. `src = None` matches any
    /// source. Panics (aborting the world) on a payload type mismatch,
    /// mirroring an MPI datatype error.
    pub fn recv<T: Elem>(&self, src: Option<usize>, tag: u32) -> Vec<T> {
        let env = self.recv_envelope(src, tag);
        match T::unwrap(env.packet) {
            Some(v) => v,
            None => panic!(
                "mpisim: recv type mismatch at rank {} (tag {tag}, from {})",
                self.rank, env.src
            ),
        }
    }

    /// Non-blocking probe for a matching message (`MPI_Iprobe` analog).
    pub fn probe(&self, src: Option<usize>, tag: u32) -> bool {
        usage::record(ExecutionModel::Mpi);
        self.check_alive();
        self.shared.mailboxes[self.rank].probe(src, tag)
    }

    /// Number of undelivered messages queued at this rank (diagnostics).
    pub fn pending_messages(&self) -> usize {
        self.shared.mailboxes[self.rank].pending()
    }

    /// Combined send-then-receive (deadlock-free thanks to eager sends).
    pub fn sendrecv<T: Elem>(
        &self,
        dst: usize,
        send_tag: u32,
        data: &[T],
        src: usize,
        recv_tag: u32,
    ) -> Vec<T> {
        self.send(dst, send_tag, data);
        self.recv(Some(src), recv_tag)
    }

    /// Send a single element.
    pub fn send_one<T: Elem>(&self, dst: usize, tag: u32, value: T) {
        self.send(dst, tag, &[value]);
    }

    /// Receive a single element.
    pub fn recv_one<T: Elem>(&self, src: Option<usize>, tag: u32) -> T {
        let v = self.recv::<T>(src, tag);
        assert_eq!(v.len(), 1, "recv_one got {} elements", v.len());
        v[0]
    }

    // ---- collectives ---------------------------------------------------

    /// Dissemination barrier: ceil(log2 P) rounds of pairwise signals.
    pub fn barrier(&self) {
        usage::record(ExecutionModel::Mpi);
        let base = self.next_coll_base();
        if self.size == 1 {
            return;
        }
        let mut k = 0u32;
        let mut d = 1usize;
        while d < self.size {
            let dst = (self.rank + d) % self.size;
            let src = (self.rank + self.size - d) % self.size;
            self.send::<i64>(dst, base + k, &[]);
            let _ = self.recv::<i64>(Some(src), base + k);
            d <<= 1;
            k += 1;
        }
    }

    /// Binomial-tree broadcast from `root`. On non-root ranks the buffer
    /// is replaced by the received data. One buffer travels the whole
    /// tree: the root moves its vector into a packet and every interior
    /// rank forwards the packet it received, so no hop copies payload.
    pub fn bcast<T: Elem>(&self, root: usize, data: &mut Vec<T>) {
        usage::record(ExecutionModel::Mpi);
        assert!(root < self.size, "bcast root out of range");
        let base = self.next_coll_base();
        if self.size == 1 {
            return;
        }
        let relative = (self.rank + self.size - root) % self.size;
        let real = |v: usize| (v + root) % self.size;
        // Receive phase: find parent.
        let mut received: Option<Packet> = None;
        let mut mask = 1usize;
        while mask < self.size {
            if relative & mask != 0 {
                received = Some(self.recv_packet::<T>(Some(real(relative - mask)), base));
                break;
            }
            mask <<= 1;
        }
        // Send phase: forward the shared buffer to children.
        mask >>= 1;
        if mask > 0 {
            let packet = match received {
                Some(p) => p,
                // Root: move its buffer behind the Arc instead of
                // cloning it once per child.
                None => T::wrap(std::mem::take(data)),
            };
            while mask > 0 {
                if relative + mask < self.size {
                    self.forward(real(relative + mask), base, &packet);
                }
                mask >>= 1;
            }
            *data = T::unwrap(packet).expect("bcast packet type checked on receive");
        } else if let Some(p) = received {
            // Leaf: sole owner by the time children drop their refs, so
            // this unwrap is usually move-out, not copy.
            *data = T::unwrap(p).expect("bcast packet type checked on receive");
        }
    }

    /// Broadcast a single element from `root`.
    pub fn bcast_one<T: Elem>(&self, root: usize, value: T) -> T {
        let mut buf = vec![value];
        self.bcast(root, &mut buf);
        buf[0]
    }

    /// Binomial-tree elementwise reduction to `root`. Returns `Some`
    /// on the root, `None` elsewhere. All ranks must pass equal-length
    /// slices.
    pub fn reduce<T: Elem>(&self, root: usize, local: &[T], op: ReduceOp) -> Option<Vec<T>> {
        usage::record(ExecutionModel::Mpi);
        assert!(root < self.size, "reduce root out of range");
        let base = self.next_coll_base();
        let relative = (self.rank + self.size - root) % self.size;
        let real = |v: usize| (v + root) % self.size;
        let mut acc = local.to_vec();
        let mut mask = 1usize;
        while mask < self.size {
            if relative & mask != 0 {
                // The accumulator is never read again: move it up the
                // tree instead of copying.
                self.send_vec(real(relative - mask), base, acc);
                return None;
            }
            let child = relative + mask;
            if child < self.size {
                let packet = self.recv_packet::<T>(Some(real(child)), base);
                let other = T::view(&packet).expect("reduce packet type checked on receive");
                assert_eq!(other.len(), acc.len(), "reduce length mismatch across ranks");
                for (a, b) in acc.iter_mut().zip(other) {
                    *a = T::apply(op, *a, *b);
                }
            }
            mask <<= 1;
        }
        if self.rank == root {
            Some(acc)
        } else {
            None
        }
    }

    /// Scalar reduction to `root`.
    pub fn reduce_one<T: Elem>(&self, root: usize, value: T, op: ReduceOp) -> Option<T> {
        self.reduce(root, &[value], op).map(|v| v[0])
    }

    /// Elementwise allreduce. Uses recursive doubling when the world is
    /// a power of two; otherwise falls back to reduce-to-0 + broadcast.
    pub fn allreduce<T: Elem>(&self, local: &[T], op: ReduceOp) -> Vec<T> {
        usage::record(ExecutionModel::Mpi);
        if self.size.is_power_of_two() && self.size > 1 {
            let base = self.next_coll_base();
            let mut acc = local.to_vec();
            let mut mask = 1usize;
            let mut round = 0u32;
            while mask < self.size {
                let partner = self.rank ^ mask;
                let other = self.sendrecv::<T>(partner, base + round, &acc, partner, base + round);
                assert_eq!(other.len(), acc.len(), "allreduce length mismatch across ranks");
                for (a, b) in acc.iter_mut().zip(other) {
                    *a = T::apply(op, *a, b);
                }
                mask <<= 1;
                round += 1;
            }
            acc
        } else {
            let reduced = self.reduce(0, local, op);
            let mut data = reduced.unwrap_or_default();
            self.bcast(0, &mut data);
            data
        }
    }

    /// Scalar allreduce.
    pub fn allreduce_one<T: Elem>(&self, value: T, op: ReduceOp) -> T {
        self.allreduce(&[value], op)[0]
    }

    /// Inclusive scan over ranks (Hillis–Steele, ceil(log2 P) rounds):
    /// rank r receives `op`-combination of locals from ranks `0..=r`.
    pub fn scan<T: Elem>(&self, local: &[T], op: ReduceOp) -> Vec<T> {
        usage::record(ExecutionModel::Mpi);
        let base = self.next_coll_base();
        let mut acc = local.to_vec();
        let mut d = 1usize;
        let mut round = 0u32;
        while d < self.size {
            if self.rank + d < self.size {
                self.send::<T>(self.rank + d, base + round, &acc);
            }
            if self.rank >= d {
                let other = self.recv::<T>(Some(self.rank - d), base + round);
                assert_eq!(other.len(), acc.len(), "scan length mismatch across ranks");
                for (a, b) in acc.iter_mut().zip(other) {
                    *a = T::apply(op, b, *a);
                }
            }
            d <<= 1;
            round += 1;
        }
        acc
    }

    /// Exclusive scan: rank r receives the combination of ranks `0..r`;
    /// rank 0 receives the operator identity.
    pub fn exscan<T: Elem>(&self, local: &[T], op: ReduceOp) -> Vec<T> {
        usage::record(ExecutionModel::Mpi);
        let inclusive = self.scan(local, op);
        let base = self.next_coll_base();
        if self.rank + 1 < self.size {
            // The inclusive result is not returned from exscan: move it
            // to the right neighbor instead of copying.
            self.send_vec(self.rank + 1, base, inclusive);
        }
        if self.rank == 0 {
            local.iter().map(|_| T::identity(op)).collect()
        } else {
            self.recv(Some(self.rank - 1), base)
        }
    }

    /// Scalar inclusive scan.
    pub fn scan_one<T: Elem>(&self, value: T, op: ReduceOp) -> T {
        self.scan(&[value], op)[0]
    }

    /// Scalar exclusive scan.
    pub fn exscan_one<T: Elem>(&self, value: T, op: ReduceOp) -> T {
        self.exscan(&[value], op)[0]
    }

    /// Linear gather of variable-length contributions, concatenated in
    /// rank order at `root` (`MPI_Gatherv` analog). The root reads each
    /// contribution through a borrowed view — no intermediate vector.
    pub fn gather<T: Elem>(&self, root: usize, local: &[T]) -> Option<Vec<T>> {
        usage::record(ExecutionModel::Mpi);
        assert!(root < self.size, "gather root out of range");
        let base = self.next_coll_base();
        if self.rank != root {
            self.send::<T>(root, base, local);
            return None;
        }
        let mut out = Vec::new();
        for r in 0..self.size {
            if r == root {
                out.extend_from_slice(local);
            } else {
                let packet = self.recv_packet::<T>(Some(r), base);
                out.extend_from_slice(T::view(&packet).expect("gather packet type checked"));
            }
        }
        Some(out)
    }

    /// Ring allgather: every rank ends with the rank-order concatenation
    /// of all contributions. Each block travels the ring as one shared
    /// buffer: every hop forwards the packet it received.
    pub fn allgather<T: Elem>(&self, local: &[T]) -> Vec<T> {
        usage::record(ExecutionModel::Mpi);
        let base = self.next_coll_base();
        let mut blocks: Vec<Option<Packet>> = (0..self.size).map(|_| None).collect();
        blocks[self.rank] = Some(T::wrap(local.to_vec()));
        let right = (self.rank + 1) % self.size;
        let left = (self.rank + self.size - 1) % self.size;
        for step in 0..self.size.saturating_sub(1) {
            let send_idx = (self.rank + self.size - step) % self.size;
            let tag = base + step as u32;
            let packet = blocks[send_idx].clone().expect("ring invariant");
            self.forward(right, tag, &packet);
            let recv_idx = (self.rank + self.size - step - 1) % self.size;
            blocks[recv_idx] = Some(self.recv_packet::<T>(Some(left), tag));
        }
        let mut out = Vec::new();
        for b in &blocks {
            let block = b.as_ref().expect("ring completed");
            out.extend_from_slice(T::view(block).expect("allgather packet type checked"));
        }
        out
    }

    /// Scatter variable-length chunks from `root`: `chunks` is consumed
    /// on the root (one `Vec` per rank, each moved to its destination —
    /// no per-chunk copies) and ignored elsewhere.
    pub fn scatter<T: Elem>(&self, root: usize, chunks: Option<Vec<Vec<T>>>) -> Vec<T> {
        usage::record(ExecutionModel::Mpi);
        assert!(root < self.size, "scatter root out of range");
        let base = self.next_coll_base();
        if self.rank == root {
            let mut chunks = chunks.expect("root must supply scatter chunks");
            assert_eq!(chunks.len(), self.size, "scatter needs one chunk per rank");
            let own = std::mem::take(&mut chunks[root]);
            for (r, chunk) in chunks.into_iter().enumerate() {
                if r != root {
                    self.send_vec(r, base, chunk);
                }
            }
            own
        } else {
            self.recv(Some(root), base)
        }
    }

    /// Scatter a slice in contiguous block distribution from `root`
    /// (the common "divide the array" idiom). Non-roots pass `None`.
    pub fn scatter_blocks<T: Elem>(&self, root: usize, data: Option<&[T]>, total_len: usize) -> Vec<T> {
        let chunks: Option<Vec<Vec<T>>> = if self.rank == root {
            let data = data.expect("root must supply scatter data");
            assert_eq!(data.len(), total_len, "scatter_blocks length mismatch");
            Some(
                (0..self.size)
                    .map(|r| data[block_range(total_len, self.size, r)].to_vec())
                    .collect(),
            )
        } else {
            None
        };
        self.scatter(root, chunks)
    }

    /// Pairwise all-to-all personalized exchange: `chunks[r]` goes to
    /// rank `r` (each moved, not copied); returns the chunks received,
    /// indexed by source rank.
    pub fn alltoall<T: Elem>(&self, mut chunks: Vec<Vec<T>>) -> Vec<Vec<T>> {
        usage::record(ExecutionModel::Mpi);
        assert_eq!(chunks.len(), self.size, "alltoall needs one chunk per rank");
        let base = self.next_coll_base();
        let mut out: Vec<Vec<T>> = (0..self.size).map(|_| Vec::new()).collect();
        out[self.rank] = std::mem::take(&mut chunks[self.rank]);
        for offset in 1..self.size {
            let dst = (self.rank + offset) % self.size;
            let src = (self.rank + self.size - offset) % self.size;
            let tag = base + offset as u32;
            self.send_vec(dst, tag, std::mem::take(&mut chunks[dst]));
            out[src] = self.recv::<T>(Some(src), tag);
        }
        out
    }
}

/// The contiguous block of `0..n` owned by `rank` out of `size` in the
/// standard balanced block distribution (remainder spread over the first
/// ranks).
pub fn block_range(n: usize, size: usize, rank: usize) -> std::ops::Range<usize> {
    let base = n / size;
    let rem = n % size;
    let lo = rank * base + rank.min(rem);
    let len = base + usize::from(rank < rem);
    lo..lo + len
}

#[cold]
pub(crate) fn abort_panic() -> ! {
    panic!("mpisim: world aborted");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_range_partitions() {
        for n in [0usize, 1, 7, 100, 101] {
            for size in [1usize, 2, 3, 8] {
                let mut covered = vec![];
                for r in 0..size {
                    covered.extend(block_range(n, size, r));
                }
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} size={size}");
            }
        }
    }

    #[test]
    fn send_owned_moves_payloads_without_copying() {
        let before = sched::stats().bytes_zero_copied;
        let out = crate::World::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    let payload: Vec<i64> = (0..1024).collect();
                    comm.send_owned(1, 7, payload);
                    Vec::new()
                } else {
                    comm.recv::<i64>(Some(0), 7)
                }
            })
            .unwrap();
        assert!(out.per_rank[0].is_empty());
        assert_eq!(out.per_rank[1], (0..1024).collect::<Vec<i64>>());
        let moved = sched::stats().bytes_zero_copied - before;
        assert!(
            moved >= 1024 * 8,
            "an owned send must count its payload bytes as zero-copied, got {moved}"
        );
    }

    #[test]
    fn block_range_balanced() {
        // Sizes differ by at most one element.
        let lens: Vec<usize> = (0..7).map(|r| block_range(100, 7, r).len()).collect();
        let min = lens.iter().min().unwrap();
        let max = lens.iter().max().unwrap();
        assert!(max - min <= 1, "{lens:?}");
    }
}
