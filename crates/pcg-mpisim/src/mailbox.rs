//! Per-rank mailboxes with tag/source matching.

use crate::packet::Packet;
#[cfg(test)]
use crate::packet::Elem;
use crate::sync::CANCEL_TICK;
use parking_lot::{Condvar, Mutex};
use pcg_core::cancel::{self, CancelToken};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};

/// A message in flight.
#[derive(Debug)]
pub struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// User or collective tag.
    pub tag: u32,
    /// Payload.
    pub packet: Packet,
    /// Virtual time at which the message is available at the receiver.
    pub available_at: f64,
}

/// One rank's incoming message queue.
pub struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    cv: Condvar,
    aborted: AtomicBool,
    /// The launching candidate's cancel token, captured at construction
    /// (worlds build mailboxes on the candidate thread). When set,
    /// blocked receives tick so a deadlocked rank pair can be killed.
    cancel: Option<CancelToken>,
}

impl Default for Mailbox {
    fn default() -> Mailbox {
        Mailbox::new()
    }
}

impl Mailbox {
    /// An empty mailbox.
    pub fn new() -> Mailbox {
        Mailbox {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            aborted: AtomicBool::new(false),
            cancel: cancel::current_token(),
        }
    }

    /// Deposit a message (non-blocking eager send).
    pub fn deposit(&self, env: Envelope) {
        let mut q = self.queue.lock();
        q.push_back(env);
        drop(q);
        self.cv.notify_all();
    }

    /// Block until a message matching `(src, tag)` arrives and remove it.
    /// `src = None` matches any source. `on_first_block` runs once before
    /// the first wait (the world uses it to release the compute token —
    /// it must be released here, not reacquired, because reacquiring a
    /// token while holding the queue lock would deadlock against senders
    /// that hold tokens and need the lock to deposit). The *caller*
    /// reacquires the token after this returns. Returns whether the wait
    /// blocked, or `None` if the mailbox is aborted.
    pub fn take_matching(
        &self,
        src: Option<usize>,
        tag: u32,
        on_first_block: &mut dyn FnMut(),
    ) -> Option<(Envelope, bool)> {
        let mut q = self.queue.lock();
        let mut blocked = false;
        loop {
            if let Some(t) = &self.cancel {
                t.check();
            }
            if self.aborted.load(Ordering::Acquire) {
                return None;
            }
            if let Some(pos) = q
                .iter()
                .position(|e| e.tag == tag && src.map(|s| s == e.src).unwrap_or(true))
            {
                return q.remove(pos).map(|e| (e, blocked));
            }
            if !blocked {
                on_first_block();
                blocked = true;
            }
            match &self.cancel {
                Some(_) => {
                    let _ = self.cv.wait_for(&mut q, CANCEL_TICK);
                }
                None => self.cv.wait(&mut q),
            }
        }
    }

    /// Non-blocking take: remove and return the first matching message,
    /// if any. The multiplexed path's receive primitive — a rank fiber
    /// that finds nothing parks itself with the scheduler instead of
    /// waiting on the mailbox condvar.
    pub fn try_take(&self, src: Option<usize>, tag: u32) -> Option<Envelope> {
        let mut q = self.queue.lock();
        let pos = q
            .iter()
            .position(|e| e.tag == tag && src.map(|s| s == e.src).unwrap_or(true))?;
        q.remove(pos)
    }

    /// Whether [`Mailbox::abort`] has been called.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// Non-blocking probe: does a matching message exist?
    pub fn probe(&self, src: Option<usize>, tag: u32) -> bool {
        let q = self.queue.lock();
        q.iter().any(|e| e.tag == tag && src.map(|s| s == e.src).unwrap_or(true))
    }

    /// Abort: wake all blocked receivers; they observe `None`.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
        let _q = self.queue.lock();
        self.cv.notify_all();
    }

    /// Number of queued messages (diagnostics).
    pub fn pending(&self) -> usize {
        self.queue.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: usize, tag: u32) -> Envelope {
        Envelope { src, tag, packet: i64::wrap(vec![src as i64]), available_at: 0.0 }
    }

    #[test]
    fn matches_tag_and_source() {
        let mb = Mailbox::new();
        mb.deposit(env(1, 7));
        mb.deposit(env(2, 7));
        mb.deposit(env(1, 9));
        let (got, _) = mb.take_matching(Some(2), 7, &mut || {}).unwrap();
        assert_eq!(got.src, 2);
        let (got, _) = mb.take_matching(None, 9, &mut || {}).unwrap();
        assert_eq!((got.src, got.tag), (1, 9));
        assert_eq!(mb.pending(), 1);
    }

    #[test]
    fn fifo_within_match() {
        let mb = Mailbox::new();
        mb.deposit(Envelope { src: 1, tag: 5, packet: i64::wrap(vec![10]), available_at: 0.0 });
        mb.deposit(Envelope { src: 1, tag: 5, packet: i64::wrap(vec![20]), available_at: 0.0 });
        let (a, _) = mb.take_matching(Some(1), 5, &mut || {}).unwrap();
        assert_eq!(a.packet, i64::wrap(vec![10]));
    }

    #[test]
    fn blocking_receive_wakes_on_deposit() {
        let mb = Mailbox::new();
        std::thread::scope(|s| {
            let h = s.spawn(|| mb.take_matching(Some(3), 1, &mut || {}));
            std::thread::sleep(std::time::Duration::from_millis(10));
            mb.deposit(env(3, 1));
            let (got, blocked) = h.join().unwrap().unwrap();
            assert_eq!(got.src, 3);
            assert!(blocked);
        });
    }

    #[test]
    fn abort_unblocks() {
        let mb = Mailbox::new();
        std::thread::scope(|s| {
            let h = s.spawn(|| mb.take_matching(None, 42, &mut || {}));
            std::thread::sleep(std::time::Duration::from_millis(10));
            mb.abort();
            assert!(h.join().unwrap().is_none());
        });
    }

    #[test]
    fn probe_does_not_consume() {
        let mb = Mailbox::new();
        mb.deposit(env(0, 1));
        assert!(mb.probe(Some(0), 1));
        assert!(mb.probe(None, 1));
        assert!(!mb.probe(None, 2));
        assert_eq!(mb.pending(), 1);
    }
}
