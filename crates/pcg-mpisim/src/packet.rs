//! Typed message payloads and reduction operators.
//!
//! Messages carry one of a small set of concrete element types; the
//! [`Elem`] trait lets the point-to-point and collective APIs stay
//! generic while byte counts (for the cost model) and reduction
//! semantics stay exact.
//!
//! Payloads are `Arc`-shared: cloning a [`Packet`] (a collective
//! forwarding a buffer to its next hop) is a reference-count bump, not a
//! data copy. A receiver that wants an owned `Vec` gets copy-on-write
//! semantics from [`Elem::unwrap`] — the data is only duplicated if
//! another rank still holds a reference. The cost model is unaffected:
//! it charges by [`Packet::byte_len`], which is a property of the
//! logical payload, not of how many copies exist in host memory.

use std::sync::Arc;

/// A message payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Packet {
    /// 64-bit floats.
    F64s(Arc<Vec<f64>>),
    /// 64-bit signed integers.
    I64s(Arc<Vec<i64>>),
    /// 32-bit unsigned integers (graph/sparse indices).
    U32s(Arc<Vec<u32>>),
    /// Raw bytes.
    Bytes(Arc<Vec<u8>>),
}

impl Packet {
    /// Payload size in bytes, as charged by the cost model.
    pub fn byte_len(&self) -> usize {
        match self {
            Packet::F64s(v) => v.len() * 8,
            Packet::I64s(v) => v.len() * 8,
            Packet::U32s(v) => v.len() * 4,
            Packet::Bytes(v) => v.len(),
        }
    }

    /// Short type tag used in mismatch diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Packet::F64s(_) => "f64",
            Packet::I64s(_) => "i64",
            Packet::U32s(_) => "u32",
            Packet::Bytes(_) => "bytes",
        }
    }
}

/// Unwrap an `Arc` payload without copying when this is the last
/// reference (the common case for point-to-point receives), cloning
/// otherwise (a collective hop still holds the buffer).
fn unshare<T: Clone>(a: Arc<Vec<T>>) -> Vec<T> {
    Arc::try_unwrap(a).unwrap_or_else(|shared| (*shared).clone())
}

/// Built-in reduction operators (the `MPI_Op` analog).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise product.
    Prod,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
}

/// An element type that can travel in a [`Packet`] and be reduced.
pub trait Elem: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static {
    /// Wrap a vector of elements into a packet (no copy: the vector is
    /// moved behind the `Arc`).
    fn wrap(v: Vec<Self>) -> Packet;
    /// Unwrap a packet into an owned vector, `None` on type mismatch.
    /// Copy-on-write: copies only if the buffer is still shared.
    fn unwrap(p: Packet) -> Option<Vec<Self>>;
    /// Borrow a packet's payload without taking ownership, `None` on
    /// type mismatch. The zero-copy read path for collectives.
    fn view(p: &Packet) -> Option<&[Self]>;
    /// Size of one element in bytes.
    const BYTES: usize;
    /// Apply a reduction operator to a pair.
    fn apply(op: ReduceOp, a: Self, b: Self) -> Self;
    /// The operator's identity element.
    fn identity(op: ReduceOp) -> Self;
}

impl Elem for f64 {
    fn wrap(v: Vec<f64>) -> Packet {
        Packet::F64s(Arc::new(v))
    }
    fn unwrap(p: Packet) -> Option<Vec<f64>> {
        match p {
            Packet::F64s(v) => Some(unshare(v)),
            _ => None,
        }
    }
    fn view(p: &Packet) -> Option<&[f64]> {
        match p {
            Packet::F64s(v) => Some(v),
            _ => None,
        }
    }
    const BYTES: usize = 8;
    fn apply(op: ReduceOp, a: f64, b: f64) -> f64 {
        match op {
            ReduceOp::Sum => a + b,
            ReduceOp::Prod => a * b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
    fn identity(op: ReduceOp) -> f64 {
        match op {
            ReduceOp::Sum => 0.0,
            ReduceOp::Prod => 1.0,
            ReduceOp::Min => f64::INFINITY,
            ReduceOp::Max => f64::NEG_INFINITY,
        }
    }
}

impl Elem for i64 {
    fn wrap(v: Vec<i64>) -> Packet {
        Packet::I64s(Arc::new(v))
    }
    fn unwrap(p: Packet) -> Option<Vec<i64>> {
        match p {
            Packet::I64s(v) => Some(unshare(v)),
            _ => None,
        }
    }
    fn view(p: &Packet) -> Option<&[i64]> {
        match p {
            Packet::I64s(v) => Some(v),
            _ => None,
        }
    }
    const BYTES: usize = 8;
    fn apply(op: ReduceOp, a: i64, b: i64) -> i64 {
        match op {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Prod => a.wrapping_mul(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
    fn identity(op: ReduceOp) -> i64 {
        match op {
            ReduceOp::Sum => 0,
            ReduceOp::Prod => 1,
            ReduceOp::Min => i64::MAX,
            ReduceOp::Max => i64::MIN,
        }
    }
}

impl Elem for u32 {
    fn wrap(v: Vec<u32>) -> Packet {
        Packet::U32s(Arc::new(v))
    }
    fn unwrap(p: Packet) -> Option<Vec<u32>> {
        match p {
            Packet::U32s(v) => Some(unshare(v)),
            _ => None,
        }
    }
    fn view(p: &Packet) -> Option<&[u32]> {
        match p {
            Packet::U32s(v) => Some(v),
            _ => None,
        }
    }
    const BYTES: usize = 4;
    fn apply(op: ReduceOp, a: u32, b: u32) -> u32 {
        match op {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Prod => a.wrapping_mul(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
    fn identity(op: ReduceOp) -> u32 {
        match op {
            ReduceOp::Sum => 0,
            ReduceOp::Prod => 1,
            ReduceOp::Min => u32::MAX,
            ReduceOp::Max => u32::MIN,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_lengths() {
        assert_eq!(f64::wrap(vec![0.0; 3]).byte_len(), 24);
        assert_eq!(i64::wrap(vec![0; 2]).byte_len(), 16);
        assert_eq!(u32::wrap(vec![0; 5]).byte_len(), 20);
        assert_eq!(Packet::Bytes(Arc::new(vec![0; 7])).byte_len(), 7);
    }

    #[test]
    fn wrap_unwrap_roundtrip() {
        let v = vec![1.5f64, -2.0];
        assert_eq!(f64::unwrap(f64::wrap(v.clone())), Some(v));
        assert_eq!(i64::unwrap(f64::wrap(vec![1.0])), None);
        assert_eq!(u32::unwrap(u32::wrap(vec![7])), Some(vec![7]));
    }

    #[test]
    fn view_borrows_without_copy() {
        let p = i64::wrap(vec![3, 4, 5]);
        assert_eq!(i64::view(&p), Some(&[3i64, 4, 5][..]));
        assert_eq!(f64::view(&p), None);
        // Still intact afterwards.
        assert_eq!(i64::unwrap(p), Some(vec![3, 4, 5]));
    }

    #[test]
    fn unwrap_is_copy_on_write() {
        let p = f64::wrap(vec![1.0, 2.0]);
        let q = p.clone();
        // Shared: unwrap must copy, leaving the other reference intact.
        let owned = f64::unwrap(p).unwrap();
        assert_eq!(owned, vec![1.0, 2.0]);
        assert_eq!(f64::view(&q), Some(&[1.0, 2.0][..]));
        // Sole reference: unwrap reuses the allocation (observable via
        // the data pointer surviving the unwrap).
        let addr = f64::view(&q).unwrap().as_ptr();
        let owned = f64::unwrap(q).unwrap();
        assert_eq!(owned.as_ptr(), addr, "sole-owner unwrap must not copy");
    }

    #[test]
    fn identities_are_identities() {
        for op in [ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Min, ReduceOp::Max] {
            for x in [-3.5f64, 0.0, 7.25] {
                assert_eq!(f64::apply(op, f64::identity(op), x), x, "{op:?} {x}");
            }
            for x in [-3i64, 0, 7] {
                assert_eq!(i64::apply(op, i64::identity(op), x), x, "{op:?} {x}");
            }
        }
    }

    #[test]
    fn ops_compute() {
        assert_eq!(f64::apply(ReduceOp::Max, 2.0, 5.0), 5.0);
        assert_eq!(i64::apply(ReduceOp::Prod, 3, 4), 12);
        assert_eq!(u32::apply(ReduceOp::Min, 3, 4), 3);
    }
}
