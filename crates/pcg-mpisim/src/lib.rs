//! # pcg-mpisim
//!
//! MPI-analog message-passing substrate for PCGBench-rs: a **virtual-time
//! simulator** that runs SPMD rank programs as real threads with private
//! memory and real data movement, while elapsed time is tracked on
//! per-rank virtual clocks combining *measured* compute with a Hockney
//! (α–β) communication cost model.
//!
//! ## Why a simulator
//!
//! The paper evaluates MPI prompts on up to 512 ranks across multiple
//! cluster nodes. This reproduction runs on one machine, so rank counts
//! beyond the physical core count cannot yield real wall-clock scaling.
//! Instead:
//!
//! * **Correctness is real** — every rank executes the candidate's code
//!   with its own private data; messages physically move between rank
//!   threads; a wrong decomposition produces a wrong answer.
//! * **Time is simulated** — each rank accumulates a virtual clock:
//!   measured CPU-seconds for compute segments (a token semaphore caps
//!   concurrent compute at the physical core count, so wall-time
//!   measurements are not distorted by oversubscription) plus modeled
//!   message costs (`latency + bytes/bandwidth`, intra- vs inter-node).
//!   The simulated runtime of a program is the maximum final clock over
//!   ranks, which is exactly what `MPI_Wtime` around the hot region
//!   measures in the paper's drivers.
//!
//! Collectives are implemented *on top of* point-to-point sends with the
//! classical algorithms (binomial broadcast/reduce, recursive-doubling
//! scan, dissemination barrier, ring allgather), so their log-P cost
//! behavior emerges from the p2p model rather than being asserted.
//!
//! ```
//! use pcg_mpisim::prelude::*;
//!
//! let world = World::new(8);
//! let outcome = world
//!     .run(|comm| {
//!         let local = vec![comm.rank() as f64; 4];
//!         comm.allreduce(&local, ReduceOp::Sum)
//!     })
//!     .unwrap();
//! assert_eq!(outcome.root()[0], 28.0); // 0+1+...+7
//! assert!(outcome.elapsed > 0.0);
//! ```

mod comm;
mod cost;
mod mailbox;
mod packet;
pub mod sched;
mod sync;
mod team;
mod world;

pub use comm::{block_range, Comm};
pub use cost::CostModel;
pub use packet::{Elem, Packet, ReduceOp};
pub use sched::{ExecMode, SchedStats};
pub use team::RankTeam;
pub use world::{SimOutcome, World};

/// Receive from any source (the `MPI_ANY_SOURCE` analog).
pub const ANY_SOURCE: Option<usize> = None;

/// Convenient glob import for candidate implementations.
pub mod prelude {
    pub use crate::{block_range, Comm, CostModel, ReduceOp, SimOutcome, World, ANY_SOURCE};
}
