//! Acceptance check for the rank multiplexer: a 512-rank world must run
//! on a bounded worker pool — not 512 OS threads — while producing
//! records byte-identical to the thread-per-rank path.
//!
//! The thread ceiling is observed externally via `/proc/self/status`
//! (`Threads:` line) sampled by a monitor thread while the world runs,
//! so the assertion covers every thread the simulator creates, not just
//! the ones it admits to.
//!
//! One `#[test]` only: the execution mode is process-global.
#![cfg(target_os = "linux")]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use pcg_mpisim::sched::{self, ExecMode};
use pcg_mpisim::{CostModel, ReduceOp, World};

const RANKS: usize = 512;

fn os_thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line in /proc/self/status")
}

fn run_world(ranks: usize) -> (Vec<i64>, Vec<f64>) {
    let out = World::new(ranks)
        .with_cost_model(CostModel::deterministic())
        .run(move |comm| {
            let rank = comm.rank() as i64;
            let sum = comm.allreduce_one(rank, ReduceOp::Sum);
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            let (from_left,) = {
                let got = comm.sendrecv(right, 7, &[rank], left, 7);
                (got[0],)
            };
            sum + from_left
        })
        .unwrap();
    (out.per_rank, out.clocks)
}

#[test]
fn mpi512_runs_on_bounded_os_threads_with_identical_records() {
    assert!(sched::supported(), "multiplexer must be available on linux/x86_64");

    // --- Multiplexed run under a thread-count monitor. ---------------------
    // Auto would *not* multiplex 512 ranks on a >=256-core host, so force it:
    // the bound under test is the multiplexer's, not the policy's.
    sched::set_exec_mode(ExecMode::ForceMux);
    let baseline = os_thread_count();
    let stats_before = sched::stats();

    let stop = Arc::new(AtomicBool::new(false));
    let peak = Arc::new(AtomicUsize::new(baseline));
    let monitor = {
        let stop = Arc::clone(&stop);
        let peak = Arc::clone(&peak);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                peak.fetch_max(os_thread_count(), Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        })
    };

    let (mux_results, mux_clocks) = run_world(RANKS);

    stop.store(true, Ordering::Relaxed);
    monitor.join().unwrap();
    let stats_after = sched::stats();

    // The monitor itself is one of the extra threads we tolerate; the
    // simulator may use at most `workers()` (~2x cores) on top of baseline.
    let extra = peak.load(Ordering::Relaxed).saturating_sub(baseline);
    assert!(
        extra <= sched::workers() + 1,
        "512-rank world used {extra} extra OS threads; multiplexer allows {} workers",
        sched::workers()
    );
    assert_eq!(
        stats_after.ranks_multiplexed - stats_before.ranks_multiplexed,
        RANKS as u64,
        "all 512 ranks must have run as fibers"
    );

    // --- Thread-per-rank reference: records must be byte-identical. --------
    sched::set_exec_mode(ExecMode::ForceThreads);
    let (thr_results, thr_clocks) = run_world(RANKS);
    sched::set_exec_mode(ExecMode::Auto);

    let expect_sum: i64 = (0..RANKS as i64).sum();
    for (rank, &v) in mux_results.iter().enumerate() {
        let left = (rank + RANKS - 1) % RANKS;
        assert_eq!(v, expect_sum + left as i64, "rank {rank} result");
    }
    assert_eq!(mux_results, thr_results, "results differ across execution paths");
    assert_eq!(
        mux_clocks, thr_clocks,
        "virtual clocks must be bit-identical across execution paths"
    );
}
