//! Containment conformance: the wait-for-graph deadlock detector and the
//! guard-paged fiber stacks must convert hostile candidates into
//! immediate, deterministic verdicts.
//!
//! One `#[test]` only: the sched counters and deadlock-detection toggle
//! are process-global, so the sections must run sequentially.

#![cfg(all(target_arch = "x86_64", unix))]

use pcg_core::PcgError;
use pcg_mpisim::{sched, CostModel, World};
use std::time::Instant;

/// Tag no rank ever sends.
const NEVER_SENT: u32 = 0x00C0_FFEE;

/// Recursion that consumes the fiber stack in ~4 KiB frames: far smaller
/// than the guard region, so no frame can leap the guard page.
#[allow(unconditional_recursion)]
#[inline(never)]
fn burn(depth: u64) -> u64 {
    let mut buf = [0u8; 4096];
    buf[0] = depth as u8;
    std::hint::black_box(&mut buf);
    burn(depth + 1) ^ u64::from(std::hint::black_box(buf[4095]))
}

fn deadlock_world(size: usize) -> Result<(), PcgError> {
    // Deterministic cost model: park-time clocks in the verdict are then
    // a pure function of the message graph, so the diagnostics are
    // byte-identical across runs and worker counts.
    World::new(size)
        .with_cost_model(CostModel::deterministic())
        .multiplexed()
        .run(|comm| {
            let partner = (comm.rank() + 1) % comm.size();
            let _: Vec<f64> = comm.recv(Some(partner), NEVER_SENT);
        })
        .map(|_| ())
}

fn expect_deadlock(r: Result<(), PcgError>) -> String {
    match r {
        Err(PcgError::Deadlock(msg)) => msg,
        other => panic!("expected deadlock verdict, got {other:?}"),
    }
}

#[test]
fn containment_battery() {
    assert!(sched::supported(), "containment requires the fiber scheduler");

    // --- deadlock: fail-fast with per-rank diagnostics -----------------
    let t0 = Instant::now();
    let msg = expect_deadlock(deadlock_world(4));
    assert!(
        t0.elapsed().as_secs_f64() < 10.0,
        "deadlock verdict must not wait out any timeout"
    );
    assert!(msg.contains("wait-for-graph quiescent"), "missing quiescence claim: {msg}");
    for rank in 0..4 {
        assert!(msg.contains(&format!("rank {rank} waits recv(src=")), "missing rank {rank}: {msg}");
    }
    assert!(msg.contains("at t="), "missing virtual-time stamp: {msg}");

    // Determinism: the verdict text is a pure function of the wait-for
    // graph, so repeated runs must agree byte-for-byte.
    assert_eq!(msg, expect_deadlock(deadlock_world(4)));

    // The detector counted each world exactly once.
    let base = sched::stats();
    expect_deadlock(deadlock_world(2));
    let after = sched::stats();
    assert_eq!(after.deadlocks_detected - base.deadlocks_detected, 1);

    // --- detector toggle: off means no verdict, candidates hang --------
    // (Exercised indirectly: with detection off a deadlock world would
    // block forever, so instead verify the toggle round-trips and leave
    // the hang measurement to the containment bench, which bounds it
    // with a harness timeout.)
    sched::set_deadlock_detection(false);
    sched::set_deadlock_detection(true);

    // --- exhaustive overflow battery -----------------------------------
    // Every overflow must be caught by the guard page (fault classified,
    // verdict emitted) and NEVER by the legacy canary word: a canary
    // detection would panic with a distinct message and surface here as
    // a Runtime error instead of StackOverflow.
    let base = sched::stats();
    const N: u64 = 32;
    for i in 0..N {
        let run = World::new(1).multiplexed().run(|comm| {
            if comm.rank() == 0 {
                std::hint::black_box(burn(0));
            }
        });
        match run {
            Err(PcgError::StackOverflow(msg)) => {
                assert!(msg.contains("guard page"), "iteration {i}: {msg}");
                assert!(!msg.contains("canary"), "iteration {i} canary-only detection: {msg}");
            }
            other => panic!("iteration {i}: expected stack-overflow verdict, got {other:?}"),
        }
    }
    let after = sched::stats();
    assert_eq!(
        after.stack_overflows_caught - base.stack_overflows_caught,
        N,
        "every overflow must be converted into a verdict"
    );
    assert_eq!(
        after.guard_faults - base.guard_faults,
        N,
        "every overflow must be classified via the guard page"
    );

    // --- overflow wins over peers' blocked receives ---------------------
    // One hog among well-behaved ranks: the world aborts with the
    // overflow verdict, not deadlock, not a hang.
    let run = World::new(4).multiplexed().run(|comm| {
        if comm.rank() == 2 {
            std::hint::black_box(burn(0));
        } else {
            let _: Vec<f64> = comm.recv(Some(2), NEVER_SENT);
        }
    });
    match run {
        Err(PcgError::StackOverflow(msg)) => {
            assert!(msg.contains("rank 2"), "verdict must name the hog: {msg}")
        }
        other => panic!("expected stack-overflow verdict, got {other:?}"),
    }

    // --- healthy worlds are untouched -----------------------------------
    // A normal message pattern on the same forced-mux path must complete
    // with no spurious verdicts.
    let out = World::new(4)
        .multiplexed()
        .run(|comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send_one(next, 7, comm.rank() as i64);
            comm.recv_one::<i64>(Some(prev), 7)
        })
        .expect("healthy ring must complete");
    let mut got = out.per_rank.clone();
    got.sort_unstable();
    assert_eq!(got, vec![0, 1, 2, 3]);
}
