//! Execution-path equivalence: the fiber multiplexer must be
//! observationally identical to thread-per-rank.
//!
//! Runs the full collective battery at non-power-of-two world sizes
//! (3, 5, 7, 48 — exercising the algorithm-switch boundaries) under
//! both execution paths, checks every result against a local oracle,
//! and asserts the virtual clocks are **bit-identical** between paths:
//! with `CostModel::deterministic()` the clock is a pure function of
//! the message graph, which scheduling must not perturb.
//!
//! One `#[test]` only: the execution mode is process-global.

use pcg_mpisim::sched::{self, ExecMode};
use pcg_mpisim::{block_range, CostModel, ReduceOp, World};

/// Every collective once, results folded into a comparable tuple.
#[derive(Debug, PartialEq, Clone)]
struct Battery {
    bcast: Vec<i64>,
    reduce_root: Option<Vec<i64>>,
    allreduce: Vec<i64>,
    scan: i64,
    exscan: i64,
    gather_root: Option<Vec<u32>>,
    allgather: Vec<u32>,
    scatter: Vec<f64>,
    alltoall: Vec<Vec<i64>>,
}

fn run_battery(size: usize) -> (Vec<Battery>, Vec<f64>) {
    let seed: Vec<f64> = (0..size * 3 + 1).map(|i| i as f64 * 0.5).collect();
    let seed_ref = &seed;
    let out = World::new(size)
        .with_cost_model(CostModel::deterministic())
        .run(move |comm| {
            let rank = comm.rank();
            let size = comm.size();
            let bcast_root = size / 2;
            let mut bcast = if rank == bcast_root {
                vec![42i64, 7, -3]
            } else {
                vec![]
            };
            comm.bcast(bcast_root, &mut bcast);
            let reduce_root = comm.reduce(size - 1, &[rank as i64, 1], ReduceOp::Sum);
            let allreduce = comm.allreduce(&[rank as i64, 2], ReduceOp::Max);
            let scan = comm.scan_one(rank as i64 + 1, ReduceOp::Sum);
            let exscan = comm.exscan_one(rank as i64 + 1, ReduceOp::Sum);
            let contrib: Vec<u32> = vec![rank as u32; rank % 3 + 1];
            let gather_root = comm.gather(0, &contrib);
            let allgather = comm.allgather(&contrib);
            let scatter = comm.scatter_blocks(
                0,
                (rank == 0).then_some(seed_ref.as_slice()),
                seed_ref.len(),
            );
            comm.barrier();
            let chunks: Vec<Vec<i64>> =
                (0..size).map(|dst| vec![(rank * 100 + dst) as i64]).collect();
            let alltoall = comm.alltoall(chunks);
            Battery {
                bcast,
                reduce_root,
                allreduce,
                scan,
                exscan,
                gather_root,
                allgather,
                scatter,
                alltoall,
            }
        })
        .unwrap();
    (out.per_rank, out.clocks)
}

fn check_oracle(size: usize, per_rank: &[Battery], seed: &[f64]) {
    let want_gather: Vec<u32> = (0..size)
        .flat_map(|r| std::iter::repeat_n(r as u32, r % 3 + 1))
        .collect();
    for (rank, b) in per_rank.iter().enumerate() {
        assert_eq!(b.bcast, vec![42, 7, -3], "bcast size={size} rank={rank}");
        let sum: i64 = (0..size as i64).sum();
        if rank == size - 1 {
            assert_eq!(b.reduce_root.as_ref().unwrap(), &vec![sum, size as i64]);
        } else {
            assert!(b.reduce_root.is_none());
        }
        assert_eq!(b.allreduce, vec![size as i64 - 1, 2], "allreduce max");
        let want_scan: i64 = (1..=rank as i64 + 1).sum();
        assert_eq!(b.scan, want_scan, "scan size={size} rank={rank}");
        assert_eq!(b.exscan, want_scan - (rank as i64 + 1));
        if rank == 0 {
            assert_eq!(b.gather_root.as_ref().unwrap(), &want_gather);
        } else {
            assert!(b.gather_root.is_none());
        }
        assert_eq!(b.allgather, want_gather);
        assert_eq!(b.scatter, seed[block_range(seed.len(), size, rank)]);
        for (src, chunk) in b.alltoall.iter().enumerate() {
            assert_eq!(chunk, &vec![(src * 100 + rank) as i64], "alltoall");
        }
    }
}

#[test]
fn collectives_identical_across_execution_paths() {
    assert!(
        sched::supported(),
        "this CI target must exercise the multiplexer"
    );
    for size in [3usize, 5, 7, 48] {
        let seed: Vec<f64> = (0..size * 3 + 1).map(|i| i as f64 * 0.5).collect();

        sched::set_exec_mode(ExecMode::ForceThreads);
        let (threads_results, threads_clocks) = run_battery(size);

        sched::set_exec_mode(ExecMode::ForceMux);
        let stats_before = sched::stats();
        let (mux_results, mux_clocks) = run_battery(size);
        let stats_after = sched::stats();

        sched::set_exec_mode(ExecMode::Auto);

        check_oracle(size, &threads_results, &seed);
        check_oracle(size, &mux_results, &seed);
        assert_eq!(
            threads_results, mux_results,
            "results must not depend on the execution path (size={size})"
        );
        // Bit-identical, not approximately equal: virtual time is pure
        // cost-model arithmetic on the same message graph.
        assert_eq!(
            threads_clocks, mux_clocks,
            "virtual clocks must be bit-identical across paths (size={size})"
        );
        assert_eq!(
            stats_after.ranks_multiplexed - stats_before.ranks_multiplexed,
            size as u64,
            "forced mux run must actually multiplex"
        );
        assert!(
            stats_after.bytes_zero_copied > stats_before.bytes_zero_copied,
            "collective battery must forward at least some buffers by reference"
        );
    }
}
