//! Property tests: every collective agrees with a local oracle for
//! arbitrary rank counts, payload lengths, and contents — including the
//! algorithm-switch boundaries (power-of-two vs not).

use pcg_mpisim::{block_range, CostModel, ReduceOp, World};
use proptest::prelude::*;

fn det_world(size: usize) -> World {
    World::new(size).with_cost_model(CostModel::deterministic())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn bcast_delivers_root_data(
        size in 1usize..12,
        root_pick in 0usize..12,
        data in proptest::collection::vec(-1000i64..1000, 0..40),
    ) {
        let root = root_pick % size;
        let data_ref = &data;
        let out = det_world(size)
            .run(move |comm| {
                let mut buf = if comm.rank() == root { data_ref.clone() } else { vec![] };
                comm.bcast(root, &mut buf);
                buf
            })
            .unwrap();
        for r in out.per_rank {
            prop_assert_eq!(&r, data_ref);
        }
    }

    #[test]
    fn allreduce_matches_oracle(
        size in 1usize..12,
        len in 1usize..20,
        seed in 0u64..500,
    ) {
        // Deterministic per-rank payloads derived from (rank, index).
        let val = move |rank: usize, i: usize| {
            ((seed as i64 + rank as i64 * 31 + i as i64 * 7) % 23) - 11
        };
        for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max] {
            let out = det_world(size)
                .run(move |comm| {
                    let local: Vec<i64> = (0..len).map(|i| val(comm.rank(), i)).collect();
                    comm.allreduce(&local, op)
                })
                .unwrap();
            let oracle: Vec<i64> = (0..len)
                .map(|i| {
                    let mut acc = val(0, i);
                    for r in 1..size {
                        acc = match op {
                            ReduceOp::Sum => acc + val(r, i),
                            ReduceOp::Min => acc.min(val(r, i)),
                            ReduceOp::Max => acc.max(val(r, i)),
                            ReduceOp::Prod => unreachable!(),
                        };
                    }
                    acc
                })
                .collect();
            for r in &out.per_rank {
                prop_assert_eq!(r, &oracle);
            }
        }
    }

    #[test]
    fn scan_and_exscan_match_oracle(size in 1usize..12, seed in 0u64..500) {
        let val = move |rank: usize| ((seed as i64 + rank as i64 * 13) % 17) - 8;
        let out = det_world(size)
            .run(move |comm| {
                (
                    comm.scan_one(val(comm.rank()), ReduceOp::Sum),
                    comm.exscan_one(val(comm.rank()), ReduceOp::Sum),
                )
            })
            .unwrap();
        let mut running = 0i64;
        for (rank, (inc, exc)) in out.per_rank.iter().enumerate() {
            prop_assert_eq!(*exc, running, "exscan at rank {}", rank);
            running += val(rank);
            prop_assert_eq!(*inc, running, "scan at rank {}", rank);
        }
    }

    #[test]
    fn scatter_gather_roundtrip(
        size in 1usize..10,
        data in proptest::collection::vec(-100f64..100.0, 1..80),
    ) {
        let data_ref = &data;
        let n = data.len();
        let out = det_world(size)
            .run(move |comm| {
                let local = comm.scatter_blocks(
                    0,
                    (comm.rank() == 0).then_some(data_ref.as_slice()),
                    n,
                );
                // The local block must be exactly this rank's range.
                let rg = block_range(n, comm.size(), comm.rank());
                assert_eq!(local, data_ref[rg]);
                comm.gather(0, &local)
            })
            .unwrap();
        prop_assert_eq!(out.per_rank[0].as_ref().unwrap(), data_ref);
    }

    #[test]
    fn allgather_matches_concatenation(size in 1usize..10, len in 0usize..10) {
        let out = det_world(size)
            .run(move |comm| {
                let local: Vec<u32> = (0..len).map(|i| (comm.rank() * 100 + i) as u32).collect();
                comm.allgather(&local)
            })
            .unwrap();
        let want: Vec<u32> = (0..size)
            .flat_map(|r| (0..len).map(move |i| (r * 100 + i) as u32))
            .collect();
        for r in out.per_rank {
            prop_assert_eq!(&r, &want);
        }
    }

    #[test]
    fn alltoall_is_a_transpose(size in 1usize..9) {
        let out = det_world(size)
            .run(move |comm| {
                let chunks: Vec<Vec<i64>> = (0..comm.size())
                    .map(|dst| vec![(comm.rank() * 100 + dst) as i64])
                    .collect();
                comm.alltoall(chunks)
            })
            .unwrap();
        for (dst, got) in out.per_rank.iter().enumerate() {
            for (src, chunk) in got.iter().enumerate() {
                prop_assert_eq!(chunk.clone(), vec![(src * 100 + dst) as i64]);
            }
        }
    }

    #[test]
    fn virtual_elapsed_is_deterministic(size in 2usize..10) {
        let run = || {
            det_world(size)
                .run(|comm| comm.allreduce_one(1.0f64, ReduceOp::Sum))
                .unwrap()
                .elapsed
        };
        // With compute_scale = 0 the virtual clock is exactly repeatable.
        prop_assert_eq!(run(), run());
    }
}
