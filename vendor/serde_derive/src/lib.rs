//! Derive macros for the vendored `serde` stub.
//!
//! Implemented directly on `proc_macro` token streams (no `syn`/`quote`,
//! which are unavailable offline). Supports exactly the shapes this
//! workspace derives on:
//!
//! - structs with named fields → JSON objects in declaration order
//! - enums whose variants are unit or one-field tuples → externally
//!   tagged (`"Variant"` or `{"Variant": payload}`), like real serde
//! - `#[serde(default)]` on a named struct field → `Default::default()`
//!   when the field is absent from the input (matching real serde), so
//!   records written before a field existed still deserialize
//!
//! Anything else (generics, tuple structs, struct variants, other
//! `#[serde]` attributes) is rejected with a compile-time panic so a
//! future change that needs it fails loudly instead of serializing
//! wrongly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    /// Fields in declaration order.
    Struct(Vec<Field>),
    /// (variant name, has one tuple payload).
    Enum(Vec<(String, bool)>),
}

struct Field {
    name: String,
    /// Marked `#[serde(default)]`: absent input → `Default::default()`.
    default: bool,
}

/// Derives `serde::Serialize` via the stub's `to_value`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derives `serde::Deserialize` via the stub's `from_value`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

fn parse(input: TokenStream) -> Input {
    let mut iter = input.into_iter();
    // Skip outer attributes and visibility until `struct`/`enum`.
    let is_enum = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) => match id.to_string().as_str() {
                "struct" => break false,
                "enum" => break true,
                _ => {} // pub, crate, ...
            },
            Some(_) => {} // pub(crate) group etc.
            None => panic!("serde_derive: no struct/enum found"),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive: tuple structs are not supported ({name})")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive: generic types are not supported ({name})")
            }
            Some(_) => {}
            None => panic!("serde_derive: missing body for {name}"),
        }
    };
    let kind = if is_enum {
        Kind::Enum(parse_variants(body, &name))
    } else {
        Kind::Struct(parse_fields(body, &name))
    };
    Input { name, kind }
}

/// Consume leading attributes; report whether one was `#[serde(default)]`.
/// Other `#[serde(...)]` contents are rejected (unimplemented here).
fn skip_attrs(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut default = false;
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                let mut attr = g.stream().into_iter();
                let is_serde =
                    matches!(attr.next(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
                if is_serde {
                    match attr.next() {
                        Some(TokenTree::Group(args))
                            if args.to_string().replace(' ', "") == "(default)" =>
                        {
                            default = true;
                        }
                        other => panic!(
                            "serde_derive: only #[serde(default)] is supported, got {other:?}"
                        ),
                    }
                }
            }
            other => panic!("serde_derive: malformed attribute: {other:?}"),
        }
    }
    default
}

fn parse_fields(body: TokenStream, ty: &str) -> Vec<Field> {
    let mut out = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        let default = skip_attrs(&mut iter);
        // Skip visibility.
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(iter.peek(), Some(TokenTree::Group(_))) {
                iter.next(); // pub(crate) etc.
            }
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) => out.push(Field { name: id.to_string(), default }),
            None => break,
            other => panic!("serde_derive: unexpected token in {ty} fields: {other:?}"),
        }
        // Skip `: Type` up to the next top-level comma; generic argument
        // lists can contain commas, so track angle-bracket depth.
        let mut depth = 0i32;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    out
}

fn parse_variants(body: TokenStream, ty: &str) -> Vec<(String, bool)> {
    let mut out = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_attrs(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: unexpected token in {ty} variants: {other:?}"),
        };
        let mut has_payload = false;
        match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                // Exactly one payload field: any top-level comma inside
                // the parens (besides a trailing one) means multi-field.
                let mut depth = 0i32;
                let mut inner = g.stream().into_iter().peekable();
                while let Some(tt) = inner.next() {
                    if let TokenTree::Punct(p) = tt {
                        match p.as_char() {
                            '<' => depth += 1,
                            '>' => depth -= 1,
                            ',' if depth == 0 && inner.peek().is_some() => panic!(
                                "serde_derive: multi-field variant {ty}::{name} not supported"
                            ),
                            _ => {}
                        }
                    }
                }
                has_payload = true;
                iter.next();
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde_derive: struct variant {ty}::{name} not supported")
            }
            _ => {}
        }
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde_derive: explicit discriminants not supported ({ty}::{name})");
        }
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            iter.next();
        }
        out.push((name, has_payload));
    }
    out
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|Field { name: f, .. }| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Obj(::std::vec![{pushes}])")
        }
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, has_payload)| {
                    if *has_payload {
                        format!(
                            "{name}::{v}(__x) => ::serde::Value::Obj(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                             ::serde::Serialize::to_value(__x))]),"
                        )
                    } else {
                        format!(
                            "{name}::{v} => \
                             ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                        )
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|Field { name: f, default }| {
                    if *default {
                        // Absent field → Default::default(); present but
                        // malformed still errors.
                        format!(
                            "{f}: match __v.field(\"{f}\") {{\n\
                                 ::std::result::Result::Ok(__x) => \
                                     ::serde::Deserialize::from_value(__x)?,\n\
                                 ::std::result::Result::Err(_) => \
                                     ::std::default::Default::default(),\n\
                             }},"
                        )
                    } else {
                        format!("{f}: ::serde::Deserialize::from_value(__v.field(\"{f}\")?)?,")
                    }
                })
                .collect();
            format!("::std::result::Result::Ok({name} {{ {inits} }})")
        }
        Kind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, p)| !p)
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter(|(_, p)| *p)
                .map(|(v, _)| {
                    format!(
                        "\"{v}\" => ::std::result::Result::Ok(\
                         {name}::{v}(::serde::Deserialize::from_value(__val)?)),"
                    )
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(\
                             ::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
                     }},\n\
                     ::serde::Value::Obj(__fields) if __fields.len() == 1 => {{\n\
                         let (__k, __val) = &__fields[0];\n\
                         match __k.as_str() {{\n\
                             {payload_arms}\n\
                             __other => ::std::result::Result::Err(\
                                 ::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::DeError::new(\
                         ::std::format!(\"expected {name} variant, got {{}}\", __other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
