//! A minimal, API-compatible subset of `serde`, vendored so the
//! workspace builds in offline environments with no crates.io access.
//!
//! Instead of serde's visitor architecture, this stub routes everything
//! through a small self-describing [`Value`] tree: `Serialize` lowers a
//! Rust value to a `Value`, `Deserialize` lifts it back, and the
//! companion `serde_json` stub renders/parses `Value` as JSON text. The
//! derive macros (re-exported from `serde_derive`) generate the same
//! external data shapes as real serde for the forms this workspace
//! uses: structs with named fields become objects, unit enum variants
//! become strings, and newtype variants become single-key objects
//! (externally tagged).

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing data tree, the interchange point between `Serialize`
/// implementations and the `serde_json` text layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (JSON number without '.'/'e' that fits u64).
    U64(u64),
    /// Negative integer (JSON number without '.'/'e').
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object; insertion order is preserved so serialization is
    /// deterministic and follows struct declaration order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object value, as the derive macros do.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::new(format!("missing field `{name}`"))),
            other => Err(DeError::new(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Short human-readable tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization error (message-only, like `serde::de::Error`).
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(String);

impl DeError {
    /// Create an error from a message.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }

    /// Error for an unrecognized enum variant (used by derives).
    pub fn unknown_variant(got: &str, ty: &str) -> DeError {
        DeError(format!("unknown variant `{got}` for enum {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Lower a value into the [`Value`] tree.
pub trait Serialize {
    /// Convert `self` to a data tree.
    fn to_value(&self) -> Value;
}

/// Lift a value back out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a data tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

fn as_u128(v: &Value) -> Result<i128, DeError> {
    match v {
        Value::U64(n) => Ok(*n as i128),
        Value::I64(n) => Ok(*n as i128),
        other => Err(DeError::new(format!(
            "expected integer, got {}",
            other.kind()
        ))),
    }
}

macro_rules! uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let n = as_u128(v)?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!(
                        "integer {n} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}
uint_impl!(u8, u16, u32, u64, usize);

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let n = as_u128(v)?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!(
                        "integer {n} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}
int_impl!(i8, i16, i32, i64, isize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => Err(DeError::new(format!(
                        "expected number, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
float_impl!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Deserialize for &'static str {
    /// Only `&'static str` can be deserialized without a borrowing
    /// deserializer; the string is leaked. The workspace uses this for
    /// model-card names, a small bounded set, so the leak is benign.
    fn from_value(v: &Value) -> Result<&'static str, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::new(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

// ---------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Arr(xs) => xs.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], DeError> {
        let xs = <Vec<T>>::from_value(v)?;
        let len = xs.len();
        xs.try_into()
            .map_err(|_| DeError::new(format!("expected array of length {N}, got {len}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<(A, B), DeError> {
        match v {
            Value::Arr(xs) if xs.len() == 2 => {
                Ok((A::from_value(&xs[0])?, B::from_value(&xs[1])?))
            }
            other => Err(DeError::new(format!(
                "expected 2-element array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<K, V> Serialize for BTreeMap<K, V>
where
    K: ToString + Ord,
    V: Serialize,
{
    /// Maps become JSON objects with stringified keys, matching real
    /// serde_json's treatment of integer-keyed maps.
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: std::str::FromStr + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<BTreeMap<K, V>, DeError> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, val)| {
                    let key = k
                        .parse::<K>()
                        .map_err(|_| DeError::new(format!("invalid map key `{k}`")))?;
                    Ok((key, V::from_value(val)?))
                })
                .collect(),
            other => Err(DeError::new(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for std::time::Duration {
    /// Matches real serde's `{ "secs": u64, "nanos": u32 }` shape.
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<std::time::Duration, DeError> {
        let secs = u64::from_value(v.field("secs")?)?;
        let nanos = u32::from_value(v.field("nanos")?)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Serialize + Deserialize + PartialEq + fmt::Debug>(x: T) {
        let v = x.to_value();
        assert_eq!(T::from_value(&v).unwrap(), x);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(true);
        roundtrip(42u64);
        roundtrip(7usize);
        roundtrip(-3i64);
        roundtrip(1.5f64);
        roundtrip("hello".to_string());
        roundtrip(Some(9u32));
        roundtrip(None::<u32>);
        roundtrip(vec![1.0f64, 2.0, 3.0]);
        roundtrip([0.1f64, 0.2, 0.3, 0.4, 0.5]);
        roundtrip(("a".to_string(), "b".to_string()));
        roundtrip(std::time::Duration::new(3, 250));
    }

    #[test]
    fn int_map_keys_stringify() {
        let mut m = BTreeMap::new();
        m.insert(2u32, vec![1.0f64]);
        m.insert(16u32, vec![2.0, 3.0]);
        match m.to_value() {
            Value::Obj(fields) => {
                assert_eq!(fields[0].0, "2");
                assert_eq!(fields[1].0, "16");
            }
            other => panic!("expected object, got {other:?}"),
        }
        roundtrip(m);
    }

    #[test]
    fn range_checks_fail_cleanly() {
        assert!(u32::from_value(&Value::U64(u64::MAX)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
    }

    #[test]
    fn missing_field_reports_name() {
        let obj = Value::Obj(vec![("a".to_string(), Value::Null)]);
        let err = obj.field("b").unwrap_err();
        assert!(err.to_string().contains("`b`"));
    }
}
