//! A minimal, API-compatible subset of `rand` 0.8, vendored so the
//! workspace builds in offline environments with no crates.io access.
//!
//! Only the surface this workspace uses is provided: [`SeedableRng`]
//! with `seed_from_u64`, [`rngs::StdRng`], and the [`Rng`] extension
//! methods `gen`, `gen_range` (half-open and inclusive integer/float
//! ranges) and `gen_bool`. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic for a given seed, which is the property
//! the benchmark relies on (no code here assumes the exact stream of
//! the real `StdRng`).

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ (Blackman &
    /// Vigna), state-seeded with SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut z = seed;
            let s = [
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> u32 {
        rng.next_u32()
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn draw(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from this range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::draw(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::draw(rng) as f32;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        // Closed/half-open distinction is immaterial at f64 resolution.
        lo + f64::draw(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::draw(rng) as f32 * (hi - lo)
    }
}

/// Extension methods over any [`RngCore`] (blanket-implemented).
pub trait Rng: RngCore {
    /// Draw a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            // Consume a draw anyway so streams stay aligned with the
            // p < 1 path.
            let _ = self.next_u64();
            return true;
        }
        if p <= 0.0 {
            let _ = self.next_u64();
            return false;
        }
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let z = r.gen_range(1usize..=4);
            assert!((1..=4).contains(&z));
            let f = r.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..4000 {
            let f: f64 = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 4000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        let freq = hits as f64 / 10_000.0;
        assert!((freq - 0.3).abs() < 0.03, "freq={freq}");
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
    }
}
