//! A minimal, API-compatible subset of `criterion`, vendored so the
//! workspace builds in offline environments with no crates.io access.
//!
//! Implements the measurement loop only: warmup, then `sample_size`
//! timed samples, reporting min/median/max per benchmark to stdout in
//! a criterion-like line. No statistical analysis, plots, or baseline
//! storage — the numbers are real wall-clock medians, which is all the
//! workspace's `≥ Nx speedup` comparisons need.

use std::time::{Duration, Instant};

/// Reuse of the real crate's name for `std::hint::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.sample_size, f);
        self
    }

    /// Finish the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// How `iter_batched` amortizes setup, kept for API compatibility.
pub enum BatchSize {
    /// Fresh setup for every routine invocation.
    PerIteration,
    /// Batched setup (treated as `PerIteration` here).
    SmallInput,
    /// Batched setup (treated as `PerIteration` here).
    LargeInput,
}

/// Passed to each benchmark closure; runs the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `f`, called `self.iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Measure `routine` on inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // Calibrate: grow the iteration count until one sample takes long
    // enough to time meaningfully, capping total runtime per bench.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    println!(
        "{id:<50} time: [{} {} {}]",
        fmt_time(per_iter[0]),
        fmt_time(median),
        fmt_time(per_iter[per_iter.len() - 1]),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut runs = 0u64;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u64; 16], |v| v.iter().sum::<u64>(), BatchSize::PerIteration)
        });
    }

    #[test]
    fn time_formatting_spans_units() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }
}
