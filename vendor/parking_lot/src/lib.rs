//! A minimal, API-compatible subset of `parking_lot`, implemented on
//! `std::sync`. Vendored because this workspace builds in offline
//! environments with no crates.io access.
//!
//! Differences from the real crate that matter here: none — the subset
//! used by this workspace (`Mutex::{new, lock, try_lock, into_inner}`,
//! `MutexGuard`, `Condvar::{new, wait, wait_for, notify_one,
//! notify_all}`) has identical semantics apart from poisoning, which
//! parking_lot does not have and which this shim suppresses via
//! `PoisonError::into_inner`.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutex that does not poison on panic.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard
    // by value; it is `None` only inside that window.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during condvar wait")
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Atomically release the guard's lock and wait for a notification,
    /// reacquiring the lock before returning (parking_lot signature:
    /// the guard is passed by mutable reference, not by value).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during condvar wait");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// [`Condvar::wait`] with a timeout. Returns a result whose
    /// `timed_out()` reports whether the wait hit the timeout rather
    /// than a notification (matching parking_lot's `WaitTimeoutResult`).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken during condvar wait");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Whether a timed wait returned because of a timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn wait_for_times_out() {
        let pair = (Mutex::new(()), Condvar::new());
        let mut g = pair.0.lock();
        let res = pair.1.wait_for(&mut g, std::time::Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        h.join().unwrap();
    }
}
