//! A minimal, API-compatible subset of `serde_json`, vendored so the
//! workspace builds in offline environments with no crates.io access.
//!
//! Renders/parses the vendored `serde` stub's `Value` tree as JSON
//! text. Provides the four entry points the workspace uses
//! (`to_string`, `to_vec`, `from_str`, `from_slice`) with the same
//! signatures. Output is deterministic: object fields keep insertion
//! (struct declaration) order and floats use Rust's shortest-roundtrip
//! `Display` form.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::fmt::Write as _;

/// Serialization or deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.to_string())
    }
}

/// Serialize to a JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize to JSON bytes.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

/// Deserialize from JSON bytes (must be UTF-8).
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's Display is the shortest string that roundtrips.
                let _ = write!(out, "{x}");
            } else {
                // Real serde_json refuses non-finite floats; records
                // never contain them, but degrade to null not panic.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(xs) => {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(x, out);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, x)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(x, out);
            }
            out.push('}');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Result<u8, Error> {
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            c => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.parse_value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(out));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: advance over a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                let code = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.unwrap_or(char::REPLACEMENT_CHARACTER));
                            // parse_hex4 leaves pos past the digits;
                            // compensate for the shared +1 below.
                            self.pos -= 1;
                        }
                        c => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}` at byte {}",
                                c as char, self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                _ => unreachable!(),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("unexpected end of \\u escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| Error::new("invalid \\u escape"))?;
        let n = u32::from_str_radix(s, 16)
            .map_err(|_| Error::new(format!("invalid \\u escape at byte {}", self.pos)))?;
        self.pos = end;
        Ok(n)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek()? == b'-' {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = s.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = s.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        s.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{s}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reparse(json: &str) -> String {
        let v: Value = {
            let mut p = Parser {
                bytes: json.as_bytes(),
                pos: 0,
            };
            p.skip_ws();
            p.parse_value().unwrap()
        };
        let mut out = String::new();
        write_value(&v, &mut out);
        out
    }

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<f64>("7").unwrap(), 7.0);
        assert_eq!(from_str::<Option<bool>>("null").unwrap(), None);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a \"quoted\"\nline\twith \\ unicode é".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.0f64, -2.25, 3.5];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,-2.25,3.5]");
        assert_eq!(from_str::<Vec<f64>>(&json).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert(2u32, vec![0.5f64]);
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"2\":[0.5]}");
        assert_eq!(
            from_str::<std::collections::BTreeMap<u32, Vec<f64>>>(&json).unwrap(),
            m
        );
    }

    #[test]
    fn whitespace_and_nesting_tolerated() {
        assert_eq!(
            reparse(" { \"a\" : [ 1 , 2 ] , \"b\" : { } } "),
            "{\"a\":[1,2],\"b\":{}}"
        );
    }

    #[test]
    fn errors_not_panics() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 trailing").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
        assert!(from_str::<u64>("\"str\"").is_err());
    }

    #[test]
    fn large_u64_survives() {
        let n = u64::MAX;
        let json = to_string(&n).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), n);
    }

    #[test]
    fn serde_default_fills_missing_fields() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Versioned {
            old: u64,
            #[serde(default)]
            added_later: u64,
        }
        // A record written before `added_later` existed still parses.
        let v: Versioned = from_str("{\"old\":7}").unwrap();
        assert_eq!(v, Versioned { old: 7, added_later: 0 });
        // Present fields are honored, and absence of a non-default
        // field is still an error.
        let v: Versioned = from_str("{\"old\":7,\"added_later\":9}").unwrap();
        assert_eq!(v.added_later, 9);
        assert!(from_str::<Versioned>("{\"added_later\":9}").is_err());
    }
}
