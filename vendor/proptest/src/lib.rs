//! A minimal, API-compatible subset of `proptest`, vendored so the
//! workspace builds in offline environments with no crates.io access.
//!
//! Supports the surface this workspace uses: the `proptest!` macro with
//! an optional `#![proptest_config(ProptestConfig::with_cases(n))]`
//! header, numeric range strategies (`0usize..40`, `-1e6f64..1e6`,
//! inclusive variants), `proptest::collection::vec(strategy, size)`,
//! and `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`.
//!
//! Differences from real proptest: no shrinking — on failure the
//! generated inputs are printed verbatim and the panic is re-raised.
//! Cases are generated from a deterministic RNG keyed by (test name,
//! case index), so failures reproduce across runs without a
//! regressions file.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Runner configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest defaults to 256; this suite's properties drive
        // whole thread pools per case, so stay an order smaller.
        ProptestConfig { cases: 32 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

impl Strategy for &str {
    type Value = String;

    /// String strategies are regex patterns in real proptest. This stub
    /// supports the subset the workspace uses: a sequence of literal
    /// characters or `[...]` classes (with `-` ranges), each optionally
    /// followed by `{n}` / `{m,n}` / `?` / `*` / `+`.
    fn generate(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        let mut chars = self.chars().peekable();
        while let Some(c) = chars.next() {
            let choices: Vec<char> = match c {
                '[' => {
                    let mut class = Vec::new();
                    loop {
                        let c = chars.next().unwrap_or_else(|| {
                            panic!("proptest stub: unterminated `[` in regex {self:?}")
                        });
                        match c {
                            ']' => break,
                            '\\' => class.push(chars.next().expect("dangling escape")),
                            c => {
                                if chars.peek() == Some(&'-') {
                                    chars.next();
                                    let hi = chars.next().expect("dangling range");
                                    class.extend(c..=hi);
                                } else {
                                    class.push(c);
                                }
                            }
                        }
                    }
                    class
                }
                '\\' => vec![chars.next().expect("dangling escape")],
                '{' | '}' | '?' | '*' | '+' => {
                    panic!("proptest stub: dangling quantifier in regex {self:?}")
                }
                c => vec![c],
            };
            assert!(!choices.is_empty(), "proptest stub: empty class in regex {self:?}");
            let (lo, hi): (usize, usize) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                    match spec.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad repetition"),
                            n.trim().parse().expect("bad repetition"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("bad repetition");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            let count = rng.gen_range(lo..=hi);
            for _ in 0..count {
                out.push(choices[rng.gen_range(0..choices.len())]);
            }
        }
        out
    }
}

/// Collection strategies (subset: `vec`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing `Vec`s of values from `elem` with a length
    /// drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max_exclusive: usize,
    }

    /// `proptest::collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        VecStrategy {
            elem,
            min: size.min,
            max_exclusive: size.max_exclusive,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.min + 1 >= self.max_exclusive {
                self.min
            } else {
                rng.gen_range(self.min..self.max_exclusive)
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Length specification accepted by [`collection::vec`].
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange { min: r.start, max_exclusive: r.end.max(r.start + 1) }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange { min: *r.start(), max_exclusive: r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max_exclusive: n + 1 }
    }
}

/// Deterministic per-case RNG: keyed by test name and case index only,
/// never by scheduling, so the same case always sees the same inputs.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9E37))
}

/// Everything the `proptest!` files import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = {
                    let mut __s = ::std::string::String::new();
                    $(
                        __s.push_str(stringify!($arg));
                        __s.push_str(" = ");
                        __s.push_str(&::std::format!("{:?}", &$arg));
                        __s.push_str("; ");
                    )+
                    __s
                };
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let ::std::result::Result::Err(__panic) = __outcome {
                    eprintln!(
                        "proptest {}: case {}/{} failed with inputs: {}",
                        stringify!($name), __case, __cfg.cases, __inputs,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn case_rng_is_deterministic_and_name_keyed() {
        let a = (0usize..100).generate(&mut super::case_rng("t", 3));
        let b = (0usize..100).generate(&mut super::case_rng("t", 3));
        assert_eq!(a, b);
        let later = (0..64u32)
            .map(|c| (0usize..1000).generate(&mut super::case_rng("t", c)))
            .collect::<Vec<_>>();
        let other = (0..64u32)
            .map(|c| (0usize..1000).generate(&mut super::case_rng("u", c)))
            .collect::<Vec<_>>();
        assert_ne!(later, other);
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let s = super::collection::vec(-5i64..5, 2..9);
        let mut rng = super::case_rng("vec_bounds", 0);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|x| (-5..5).contains(x)));
        }
        let empty_ok = super::collection::vec(0u32..3, 0..1);
        assert!(empty_ok.generate(&mut rng).is_empty());
    }

    #[test]
    fn regex_strategy_generates_matching_strings() {
        let mut rng = super::case_rng("regex", 0);
        for _ in 0..100 {
            let s = "[a-zA-Z][a-zA-Z0-9]{0,20}".generate(&mut rng);
            assert!((1..=21).contains(&s.len()));
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
            let t = "[ -~]{1,120}".generate(&mut rng);
            assert!((1..=120).contains(&t.len()));
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
            assert_eq!("ab\\[c".generate(&mut rng), "ab[c");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_and_runs(x in 1usize..10, v in crate::collection::vec(0f64..1.0, 0..4)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() < 4);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x + 1, x);
        }
    }
}
