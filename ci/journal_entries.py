#!/usr/bin/env python3
"""Count committed entry frames in a pcgbench journal.

CI's kill-and-resume smoke needs to know when a running worker has
durably journaled "enough" cells before SIGKILLing it. With the v3
binary format that is no longer a line count: this walks the
length-prefixed frames (structurally, no CRC check — a torn tail
simply stops the walk, exactly like replay's accounting) and prints
the number of entry frames after the header. Falls back to counting
non-empty lines after the header line for legacy v2 JSONL journals.
Prints 0 for a missing or unrecognisable file.
"""

import struct
import sys

MAGIC = b"PCGJRNL3"
FRAME_OVERHEAD = 16  # u32 len | u64 cell | u32 crc


def entries(path: str) -> int:
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError:
        return 0
    if data[: len(MAGIC)] == MAGIC:
        count = -1  # frame 0 is the header, not an entry
        offset = len(MAGIC)
        while len(data) - offset >= FRAME_OVERHEAD:
            (length,) = struct.unpack_from("<I", data, offset)
            end = offset + FRAME_OVERHEAD + length
            if end > len(data):
                break  # torn tail
            count += 1
            offset = end
        return max(count, 0)
    # v2 JSONL: header line, then one entry per line.
    lines = [line for line in data.split(b"\n") if line]
    return max(len(lines) - 1, 0)


if __name__ == "__main__":
    print(entries(sys.argv[1]))
