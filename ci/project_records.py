#!/usr/bin/env python3
"""Project an EvalRecord JSON file to its cross-process-deterministic fields.

Separate cold runs legitimately differ in the measured timing floats
(performance ratios, sweep values): the virtual-time clocks contain a
genuinely measured compute component. Everything else -- model order,
task identity and order, build flags, correctness flags, which sweep
resource counts were collected -- must be identical between a clean run
and a killed-then---resume run. CI diffs this projection.
"""
import json
import sys

with open(sys.argv[1]) as f:
    rec = json.load(f)

proj = [
    {
        "model": m["model"],
        "tasks": [
            {
                "task": t["task"],
                "built": t["low"]["built"],
                "correct": t["low"]["correct"],
                "high_correct": (t.get("high") or {}).get("correct"),
                "sweep_ns": sorted(t["sweep"], key=int),
            }
            for t in m["tasks"]
        ],
    }
    for m in rec["models"]
]
json.dump(proj, sys.stdout, indent=1, sort_keys=True)
print()
