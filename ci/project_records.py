#!/usr/bin/env python3
"""Project an EvalRecord JSON file to its cross-process-deterministic fields.

This script used to carry its own copy of the projection, which could
(and did threaten to) drift from the Rust copies in the warm-path and
mux tests. It is now a thin shim over the `project_records` binary,
which calls `pcg_harness::record::projection` -- the single definition
the tests use -- so the projection cannot diverge between CI and the
test suite. Pass --stats to project an EvalStats sidecar instead.
"""
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
BIN = os.path.join(REPO, "target", "release", "project_records")

args = sys.argv[1:]
if not args:
    print("usage: project_records.py [--stats] <records.json>", file=sys.stderr)
    sys.exit(2)

if os.path.exists(BIN):
    cmd = [BIN, *args]
else:
    cmd = [
        "cargo", "run", "-q", "--release",
        "-p", "pcg-harness", "--bin", "project_records", "--", *args,
    ]
sys.exit(subprocess.run(cmd, cwd=REPO).returncode)
