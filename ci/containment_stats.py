#!/usr/bin/env python3
"""Validate a BENCH_containment.json measurement.

The containment bench already asserts its acceptance bar in-process;
this re-checks the committed numbers from the outside so a stale or
hand-edited snapshot cannot sneak a regression past CI, and so the
failure message names every violated invariant at once:

  * ratio < 0.5 — an injected-Deadlock grid with the wait-for-graph
    detector on must finish in less than half the timeout-only
    baseline (the containment acceptance bar; measured ~0.001x).
  * ratio == failfast_s / baseline_s within rounding — the three
    numbers must actually agree with each other.
  * deadlocks_detected > 0 — the fast side won by detecting, not by
    skipping the defective cells.
  * baseline_timeouts > 0 — the slow side really burned timeouts, so
    the ratio compares containment against the pre-containment
    behavior rather than two fast paths.
"""

import json
import sys

if len(sys.argv) != 2:
    print("usage: containment_stats.py <BENCH_containment.json>", file=sys.stderr)
    sys.exit(2)

with open(sys.argv[1], "r", encoding="utf-8") as fh:
    bench = json.load(fh)

problems = []

ratio = bench["ratio"]
baseline = bench["baseline_s"]
failfast = bench["failfast_s"]
if not ratio < 0.5:
    problems.append(f"fail-fast ratio {ratio} is not < 0.5x the timeout-only baseline")
if baseline <= 0 or failfast <= 0:
    problems.append(f"non-positive timings: baseline_s={baseline} failfast_s={failfast}")
elif abs(ratio - failfast / baseline) > 0.001:
    problems.append(
        f"ratio {ratio} disagrees with failfast_s/baseline_s = {failfast / baseline:.4f}"
    )
if bench["deadlocks_detected"] <= 0:
    problems.append("deadlocks_detected is zero: the fast side never exercised the detector")
if bench["baseline_timeouts"] <= 0:
    problems.append("baseline_timeouts is zero: the slow side never burned a timeout")

if problems:
    for p in problems:
        print(f"containment_stats: FAIL: {p}", file=sys.stderr)
    sys.exit(1)

print(
    f"containment_stats: ok: baseline {baseline:.3f}s, fail-fast {failfast:.3f}s, "
    f"ratio {ratio} ({bench['deadlocks_detected']} deadlocks detected, "
    f"{bench['baseline_timeouts']} baseline timeouts)"
)
