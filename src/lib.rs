//! # PCGBench-rs
//!
//! A Rust reproduction of *"Can Large Language Models Write Parallel
//! Code?"* (Nichols, Davis, Xie, Rajaram, Bhatele — HPDC 2024): the
//! PCGBench benchmark, its seven execution substrates, the evaluation
//! harness, and the paper's novel metrics (`pass@k`, `build@k`,
//! `speedup_n@k`, `efficiency_n@k`).
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `pcg-core` | tasks, execution models, prompts, usage instrumentation |
//! | [`shmem`] | `pcg-shmem` | OpenMP-analog work-sharing thread pool |
//! | [`patterns`] | `pcg-patterns` | Kokkos-analog views + parallel patterns |
//! | [`mpisim`] | `pcg-mpisim` | virtual-time MPI simulator |
//! | [`hybrid`] | `pcg-hybrid` | MPI+OpenMP composition |
//! | [`gpusim`] | `pcg-gpusim` | CUDA/HIP-analog SIMT emulator |
//! | [`problems`] | `pcg-problems` | the 60 problems / 420 tasks |
//! | [`models`] | `pcg-models` | calibrated synthetic LLM zoo |
//! | [`metrics`] | `pcg-metrics` | the paper's metric estimators |
//! | [`harness`] | `pcg-harness` | evaluation pipeline + figure regenerators |
//!
//! ```
//! use pcgbench::metrics::pass_at_k;
//!
//! // 20 samples, 8 correct: the probability one draw is correct.
//! assert!((pass_at_k(20, 8, 1) - 0.4).abs() < 1e-12);
//! ```

pub use pcg_core as core;
pub use pcg_gpusim as gpusim;
pub use pcg_harness as harness;
pub use pcg_hybrid as hybrid;
pub use pcg_metrics as metrics;
pub use pcg_models as models;
pub use pcg_mpisim as mpisim;
pub use pcg_patterns as patterns;
pub use pcg_problems as problems;
pub use pcg_shmem as shmem;
