//! Evaluate a custom candidate source against the paper's zoo.
//!
//! PCGBench's point is comparative: plug new rows into the same
//! harness and see where they land. Since the evaluation core runs on
//! the [`CandidateSource`] trait, a custom integration implements the
//! trait directly — this example builds a two-row source (a
//! hypothetical "HPC-tuned" model next to GPT-3.5) and drives the
//! standard evaluation and report paths with it, end to end:
//!
//! 1. implement `CandidateSource` (names, weights flags, deterministic
//!    `sample`),
//! 2. hand it to `eval::evaluate` exactly where a zoo slice would go,
//! 3. read the comparison out of the ordinary report helpers.
//!
//! The impl here wraps [`SyntheticModel`] samplers because this repo's
//! candidates are synthetic; a real integration would return pools
//! scored from actual model output (see `pcg_models::ReplaySource` for
//! the offline version of that). The contracts that matter are in the
//! trait docs: `sample` must be a pure function of `(row, task, spec)`,
//! and `config_salt` must be non-empty for any source whose pools
//! differ from the default synthetic path — it is folded into the
//! config hash so journals and caches from different sources can never
//! be spliced together on resume.
//!
//! ```sh
//! cargo run --release --example evaluate_custom_model
//! ```

use pcgbench::core::{CandidateKind, ExecutionModel, ProblemId, ProblemType, TaskId};
use pcgbench::harness::{eval, report, EvalConfig};
use pcgbench::models::{Calibration, CandidateSource, ModelCard, SampleSpec, SyntheticModel};

/// A custom source: one hand-calibrated "MPI-tuned" row plus one zoo
/// row for reference.
struct MpiTunedVsZoo {
    rows: Vec<SyntheticModel>,
}

impl MpiTunedVsZoo {
    fn new() -> MpiTunedVsZoo {
        let card = ModelCard {
            name: "MPI-Tuned-13B",
            params_b: Some(13.0),
            weights_available: true,
            license: Some("apache-2.0"),
            humaneval_pass1: 40.0,
            mbpp_pass1: None,
        };
        // Hand-written exec rates: unusually strong on MPI and hybrid.
        let calib = Calibration {
            exec_rate: [0.55, 0.45, 0.30, 0.50, 0.45, 0.30, 0.28],
            efficient_share: 0.75,
            collapse_prob: 0.10,
            failure_mix: [0.20, 0.40, 0.15, 0.15, 0.10, 0.0, 0.0, 0.0],
        };
        let tuned = SyntheticModel::custom(card, calib, false);
        let gpt = SyntheticModel::by_name("GPT-3.5").expect("zoo model");
        MpiTunedVsZoo { rows: vec![tuned, gpt] }
    }
}

impl CandidateSource for MpiTunedVsZoo {
    fn model_names(&self) -> Vec<String> {
        self.rows.iter().map(|m| m.card().name.to_string()).collect()
    }

    fn weights_available(&self, model: usize) -> bool {
        self.rows[model].card().weights_available
    }

    fn sample(&self, model: usize, task: TaskId, spec: &SampleSpec) -> Vec<CandidateKind> {
        // Pure in (model, task, spec): the sampler derives its stream
        // from the row's name, the task, and the spec alone.
        self.rows[model]
            .clone()
            .with_chaos(spec.deadlock_rate, spec.stack_hog_rate)
            .sample_n(task, spec.temperature, spec.n, spec.seed)
    }

    fn config_salt(&self) -> Vec<u8> {
        // This grid is not the default zoo, so it must not share the
        // default hash: journals written here would otherwise replay
        // into a zoo run (and vice versa).
        b"example-mpi-tuned-vs-gpt35-v1".to_vec()
    }
}

fn main() {
    let source = MpiTunedVsZoo::new();

    // One MPI task per problem type.
    let tasks: Vec<_> = ProblemType::ALL
        .into_iter()
        .map(|pt| ProblemId::new(pt, 0).task(ExecutionModel::Mpi))
        .collect();

    let cfg = EvalConfig::smoke();
    let record = eval::evaluate(&cfg, &source, Some(&tasks));

    println!("{:<16} {:>14} {:>14}", "problem type", "MPI-Tuned-13B", "GPT-3.5");
    for pt in ProblemType::ALL {
        let v: Vec<f64> = record
            .models
            .iter()
            .map(|m| report::mean_pass_at_k(m, |t| t.problem.ptype == pt, 1, false))
            .collect();
        println!("{:<16} {:>14.3} {:>14.3}", pt.label(), v[0], v[1]);
    }
    for m in &record.models {
        let all = report::mean_pass_at_k(m, |_| true, 1, false);
        println!("{:<16} overall MPI pass@1 = {all:.3}", m.model);
    }
}
