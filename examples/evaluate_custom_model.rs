//! Evaluate a hypothetical "HPC-tuned" model against the paper's zoo.
//!
//! PCGBench's point is comparative: plug a new model into the same
//! harness and see where it lands. Here we define a custom synthetic
//! model whose calibration represents a model fine-tuned on MPI code
//! (strong distributed-memory rates) and compare it with GPT-3.5 on the
//! MPI tasks.
//!
//! ```sh
//! cargo run --release --example evaluate_custom_model
//! ```

use pcgbench::core::{ExecutionModel, ProblemId, ProblemType};
use pcgbench::harness::{eval, report, EvalConfig};
use pcgbench::models::{Calibration, ModelCard, SyntheticModel};

fn main() {
    let card = ModelCard {
        name: "MPI-Tuned-13B",
        params_b: Some(13.0),
        weights_available: true,
        license: Some("apache-2.0"),
        humaneval_pass1: 40.0,
        mbpp_pass1: None,
    };
    // Hand-written exec rates: unusually strong on MPI and hybrid.
    let calib = Calibration {
        exec_rate: [0.55, 0.45, 0.30, 0.50, 0.45, 0.30, 0.28],
        efficient_share: 0.75,
        collapse_prob: 0.10,
        failure_mix: [0.20, 0.40, 0.15, 0.15, 0.10, 0.0, 0.0, 0.0],
    };
    let tuned = SyntheticModel::custom(card, calib, false);
    let gpt = SyntheticModel::by_name("GPT-3.5").expect("zoo model");

    // One MPI task per problem type.
    let tasks: Vec<_> = ProblemType::ALL
        .into_iter()
        .map(|pt| ProblemId::new(pt, 0).task(ExecutionModel::Mpi))
        .collect();

    let cfg = EvalConfig::smoke();
    let record = eval::evaluate(&cfg, &[tuned, gpt], Some(&tasks));

    println!("{:<16} {:>14} {:>14}", "problem type", "MPI-Tuned-13B", "GPT-3.5");
    for pt in ProblemType::ALL {
        let v: Vec<f64> = record
            .models
            .iter()
            .map(|m| report::mean_pass_at_k(m, |t| t.problem.ptype == pt, 1, false))
            .collect();
        println!("{:<16} {:>14.3} {:>14.3}", pt.label(), v[0], v[1]);
    }
    for m in &record.models {
        let all = report::mean_pass_at_k(m, |_| true, 1, false);
        println!("{:<16} overall MPI pass@1 = {all:.3}", m.model);
    }
}
