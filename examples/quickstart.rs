//! Quickstart: evaluate one model on a handful of PCGBench tasks and
//! print `pass@1` plus headline speedups.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pcgbench::core::{ExecutionModel, ProblemId, ProblemType};
use pcgbench::harness::{eval, report, EvalConfig};
use pcgbench::models::SyntheticModel;

fn main() {
    // A fast configuration: small workloads, few samples.
    let cfg = EvalConfig::smoke();

    // Pick a model from the paper's zoo (Table 2).
    let model = SyntheticModel::by_name("GPT-3.5").expect("zoo model");
    println!(
        "model: {} (HumanEval pass@1 {:.1})",
        model.card().name,
        model.card().humaneval_pass1
    );

    // Evaluate the scan problems under every execution model.
    let tasks: Vec<_> = ExecutionModel::ALL
        .into_iter()
        .map(|m| ProblemId::new(ProblemType::Scan, 1).task(m))
        .collect();
    let record = eval::evaluate(&cfg, &[model], Some(&tasks));

    let m = &record.models[0];
    println!("\n{:<10} {:>8} {:>10}", "exec", "pass@1", "speedup@1");
    for exec in ExecutionModel::ALL {
        let pass = report::mean_pass_at_k(m, |t| t.model == exec, 1, false);
        let speedup = report::mean_speedup(m, |t| t.model == exec);
        println!("{:<10} {:>8.3} {:>10.2}", exec.label(), pass, speedup);
    }

    let serial = report::mean_pass_at_k(m, |t| !t.model.is_parallel(), 1, false);
    let parallel = report::mean_pass_at_k(m, |t| t.model.is_parallel(), 1, false);
    println!("\nserial pass@1 = {serial:.3}, parallel pass@1 = {parallel:.3}");
    println!("(the paper's headline finding: parallel code generation is much harder)");
}
