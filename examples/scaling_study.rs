//! Scaling study: how the *reference* parallel implementations scale
//! across resource counts — the substrate-side view behind Figure 5.
//!
//! Runs one representative problem per substrate over its resource
//! sweep and prints speedup/efficiency of the efficient reference
//! implementation (no LLM sampling involved).
//!
//! ```sh
//! cargo run --release --example scaling_study
//! ```

use pcgbench::core::{CandidateKind, ExecutionModel, ProblemId, ProblemType, Quality};
use pcgbench::harness::{runner::Runner, EvalConfig};

fn main() {
    let mut cfg = EvalConfig::quick();
    cfg.reps = 3;
    let mut runner = Runner::new(cfg);

    let cases = [
        (ProblemType::Stencil, 2, ExecutionModel::OpenMp),
        (ProblemType::Scan, 0, ExecutionModel::Kokkos),
        (ProblemType::SparseLinearAlgebra, 0, ExecutionModel::Mpi),
    ];

    for (ptype, variant, exec) in cases {
        let task = ProblemId::new(ptype, variant).task(exec);
        println!("\n== {task} (efficient reference implementation) ==");
        println!("{:>8} {:>10} {:>12}", "n", "speedup", "efficiency");
        for n in exec.resource_sweep() {
            let r = runner.ratio(task, CandidateKind::Correct(Quality::Efficient), n);
            println!("{:>8} {:>10.2} {:>12.3}", n, r, r / f64::from(n.max(1)));
        }
    }

    println!("\nEfficiency declining with n is the expected shape (Figure 5):");
    println!("fixed problem size, growing communication/synchronization share.");
}
