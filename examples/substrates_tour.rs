//! A tour of the five execution substrates, used directly (the APIs a
//! "generated candidate" program targets).
//!
//! ```sh
//! cargo run --release --example substrates_tour
//! ```

use pcgbench::gpusim::{cuda, GpuBuffer, Launch};
use pcgbench::hybrid::HybridWorld;
use pcgbench::mpisim::{block_range, CostModel, ReduceOp, World};
use pcgbench::patterns::{ExecSpace, View};
use pcgbench::shmem::{Pool, Schedule, UnsafeSlice};

fn main() {
    let n = 1 << 16;
    let xs: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    let want: f64 = xs.iter().map(|x| x * x).sum();
    println!("reference sum of squares = {want:.4}\n");

    // 1. pcg-shmem: the OpenMP analog (work-sharing thread pool).
    let pool = Pool::new(4);
    let shmem = pool.parallel_for_reduce(0..n, 0.0, |a, i| a + xs[i] * xs[i], |a, b| a + b);
    println!("shmem     (4 threads):           {shmem:.4}");

    // ... with an output array and a schedule clause.
    let mut doubled = vec![0.0; n];
    {
        let out = UnsafeSlice::new(&mut doubled);
        pool.parallel_for(0..n, Schedule::Dynamic { chunk: 1024 }, |i| unsafe {
            out.write(i, 2.0 * xs[i]);
        });
    }
    assert_eq!(doubled[7], 2.0 * xs[7]);

    // 2. pcg-patterns: the Kokkos analog (views + patterns).
    let space = ExecSpace::new(4);
    let view = View::from_slice("xs", &xs);
    let kokkos = space.parallel_reduce(n, 0.0, |i| view.get(i) * view.get(i), |a, b| a + b);
    println!("patterns  (4 threads):           {kokkos:.4}");

    // 3. pcg-mpisim: the MPI analog (virtual-time message passing).
    let world = World::new(8).with_cost_model(CostModel::cluster());
    let outcome = world
        .run(|comm| {
            let rg = block_range(n, comm.size(), comm.rank());
            let local: f64 = rg.map(|i| xs[i] * xs[i]).sum();
            comm.allreduce_one(local, ReduceOp::Sum)
        })
        .expect("world runs");
    println!("mpisim    (8 ranks):             {:.4}  [sim elapsed {:.2e}s]", outcome.root(), outcome.elapsed);

    // 4. pcg-hybrid: MPI + threads.
    let hybrid = HybridWorld::new(2, 4);
    let outcome = hybrid
        .run(|ctx| {
            let comm = ctx.comm();
            let rg = block_range(n, comm.size(), comm.rank());
            let local = ctx.par_reduce(rg, 0.0, |a, i| a + xs[i] * xs[i], |a, b| a + b);
            comm.allreduce_one(local, ReduceOp::Sum)
        })
        .expect("hybrid world runs");
    println!("hybrid    (2 ranks x 4 threads): {:.4}  [sim elapsed {:.2e}s]", outcome.root(), outcome.elapsed);

    // 5. pcg-gpusim: the CUDA analog (SIMT emulation + device model).
    let gpu = cuda::device();
    let x = GpuBuffer::from_slice(&xs);
    let acc = GpuBuffer::<f64>::zeroed(1);
    gpu.launch_each(Launch::over(n, 256), |t, ctx| {
        let i = t.global_id();
        if i < x.len() {
            let v = ctx.read(&x, i);
            ctx.atomic_add(&acc, 0, v * v);
        }
    });
    println!("gpusim    ({}):           {:.4}  [device time {:.2e}s]", gpu.profile().name, acc.load(0), gpu.elapsed());
}
